"""The RTT model.

An RTT between two endpoints decomposes as::

    rtt = 2 * (propagation + per_hop_processing + access_src + access_dst)
          * (1 +- direction_asymmetry)
          + jitter                                  (per packet)

* **propagation** — fiber delay along the geographic waypoints of the BGP
  path between the endpoints' ASes (:mod:`repro.routing.geopath`);
* **per-hop processing** — a small per-AS-hop cost (router processing and
  intra-AS queueing);
* **access** — the endpoint's host/last-mile latency: large for home
  probes, tiny for router interfaces inside a facility.  This term is why
  eyeball-hosted relays underperform in the paper: a relayed path pays the
  relay's access latency twice (once per stitched segment);
* **asymmetry** — a deterministic, pair-specific few-percent skew between
  the two ping directions, matching the paper's observation that direction
  changes the measured RTT by <5% in ~80% of cases;
* **jitter** — per-packet multiplicative noise plus exponential queueing
  and rare heavy spikes (the outliers that justify median-of-6 batches).

Base RTTs are deterministic given the world seed; only the per-packet terms
consume random numbers at measurement time.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.geo.distance import SPEED_OF_LIGHT_FIBER_KM_PER_MS
from repro.routing.bgp import BGPRouting
from repro.routing.geopath import GeoPathWalker


@dataclass(frozen=True, slots=True)
class Endpoint:
    """A pingable interface somewhere in the simulated Internet.

    Attributes:
        node_id: Stable unique identifier (used for deterministic hashing).
        asn: AS originating the interface's address.
        city_key: City the interface is physically in.
        access_ms: One-way host/access latency added at this endpoint.
        loss_prob: Per-packet loss probability contributed by this endpoint.
    """

    node_id: str
    asn: int
    city_key: str
    access_ms: float
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.access_ms < 0:
            raise ConfigError(f"negative access_ms for {self.node_id}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ConfigError(f"loss_prob {self.loss_prob} outside [0, 1) for {self.node_id}")

    def __hash__(self) -> int:
        # node ids are unique per world, so hashing the id alone is
        # consistent with field equality — and far cheaper than the
        # generated all-fields hash on the cache-key hot path (str hashes
        # are cached by the interpreter; the millions of per-leg cache
        # lookups a campaign makes hit this)
        return hash(self.node_id)


@dataclass(frozen=True, slots=True)
class LatencyConfig:
    """Tunables of the RTT model."""

    per_hop_ms: float = 0.35
    """One-way processing cost per AS-level hop."""

    jitter_sigma: float = 0.025
    """Sigma of the per-packet lognormal multiplicative jitter."""

    queueing_scale_ms: float = 0.4
    """Scale of the per-packet exponential queueing term (ms)."""

    spike_prob: float = 0.015
    """Probability a packet hits a congestion spike."""

    spike_range_ms: tuple[float, float] = (30.0, 300.0)
    """Uniform range of spike magnitude (ms)."""

    base_loss_prob: float = 0.004
    """Path loss probability independent of the endpoints."""

    asymmetry_frac: float = 0.045
    """Maximum deterministic per-direction measurement skew (host timer and
    scheduling effects).  Each ordered pair gets an independent skew in
    [-frac, +frac]; with 0.045 the two directions of a pair agree within 5%
    for ~80% of pairs, matching the paper's Sec 2.5 observation."""

    def __post_init__(self) -> None:
        if self.per_hop_ms < 0 or self.queueing_scale_ms < 0:
            raise ConfigError("per-hop and queueing costs must be non-negative")
        if not 0.0 <= self.spike_prob < 1.0:
            raise ConfigError(f"spike_prob {self.spike_prob} outside [0, 1)")
        if not 0.0 <= self.base_loss_prob < 1.0:
            raise ConfigError(f"base_loss_prob {self.base_loss_prob} outside [0, 1)")
        if self.spike_range_ms[0] > self.spike_range_ms[1]:
            raise ConfigError("spike_range_ms must be (low, high)")
        if not 0.0 <= self.asymmetry_frac < 0.5:
            raise ConfigError(f"asymmetry_frac {self.asymmetry_frac} outside [0, 0.5)")


def _pair_unit_hash(a: str, b: str) -> float:
    """Deterministic value in [0, 1) specific to the ordered pair (a, b)."""
    digest = hashlib.blake2b(f"{a}|{b}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True, slots=True)
class PairGrid:
    """Deterministic pair terms for a (rows × cols) endpoint grid.

    ``base[i, j]`` is the base RTT from ``rows[i]`` to ``cols[j]`` (NaN when
    either direction is unrouted) and ``loss[i, j]`` the pair's per-packet
    loss probability — the same two values :meth:`LatencyModel._pair_entries`
    resolves per leg, assembled once for the whole grid.  A measurement step
    gathers its legs' entries by index instead of running the per-leg
    token/cache loop.
    """

    base: np.ndarray  #: (rows × cols) base RTT, NaN = unrouted
    loss: np.ndarray  #: (rows × cols) per-packet loss probability

    @property
    def shape(self) -> tuple[int, int]:
        return self.base.shape


class LatencyModel:
    """Computes base and sampled RTTs between :class:`Endpoint` objects."""

    def __init__(
        self,
        routing: BGPRouting,
        walker: GeoPathWalker,
        config: LatencyConfig | None = None,
    ) -> None:
        self._routing = routing
        self._walker = walker
        self._cfg = config or LatencyConfig()
        # path-RTT cache keyed by (src_asn, src_city, dst_asn, dst_city)
        self._path_cache: dict[tuple[int, str, int, str], float | None] = {}
        # destination-city-independent walk data keyed by (src_asn,
        # src_city, dst_asn): (prefix_km, end_idx, end_city, stretch,
        # hop_ms), or None when unrouted.  Many quadruples differ only in
        # the destination city (relays spread over a destination AS), so
        # this drops their path + prefix lookups to one dict hit.
        self._triple_cache: dict[
            tuple[int, str, int], tuple[float, int, str, float, float] | None
        ] = {}
        # precomputed attachment-to-attachment one-way delay grid (built by
        # the routing fabric; see set_attachment_grid).  Endpoints outside
        # the grid (pipeline monitors, looking glasses) fall back to the
        # per-key batch below.
        self._grid: np.ndarray | None = None
        self._grid_ids: dict[tuple[int, str], int] = {}
        # keyed by id(endpoint): every endpoint reaching this map has
        # already been pinned by _endpoint_token (see _pair_key callers)
        self._att_of: dict[int, int] = {}
        # (base RTT or NaN-if-unrouted, loss probability) per ordered pair,
        # keyed by per-endpoint cache tokens (see _endpoint_token); both
        # values are deterministic, and the campaign re-measures the same
        # pairs twice per round (steps 2 and 4) and the same legs round
        # after round, so the batch sampler's per-leg loop is one dict hit
        # on a batch-ready entry.  Token-tuple keys hash entirely in C —
        # with Endpoint-tuple keys the interpreter pays two Python-level
        # __hash__ calls per lookup, which profiling put near the top of
        # the whole campaign.
        self._pair_cache: dict[tuple, tuple[float, float]] = {}
        # ordered-pair skew memo as a growable code-indexed matrix: blake2b
        # per pair is the one irreducibly scalar term of the pair grid, and
        # campaign rounds revisit mostly-overlapping endpoint/relay sets —
        # warm cells come back as one fancy-indexed gather, NaN cells are
        # hashed once and written back
        self._skew_codes: dict[str, int] = {}
        self._skew_matrix: np.ndarray = np.full((0, 0), np.nan)
        # endpoint-token memo: id(endpoint) -> token, with a strong
        # reference pinning each memoized object so ids are never reused
        self._ep_tokens: dict[int, object] = {}
        self._ep_refs: dict[int, Endpoint] = {}
        self._ep_owner: dict[str, Endpoint] = {}

    @property
    def config(self) -> LatencyConfig:
        """The model's tunables."""
        return self._cfg

    # ----------------------------------------------------------- base RTT

    def path_one_way_ms(
        self, src_asn: int, src_city: str, dst_asn: int, dst_city: str
    ) -> float | None:
        """One-way network delay between two (ASN, city) attachment points.

        Excludes endpoint access latency.  Returns None when no valley-free
        route exists.  Cached; deterministic.
        """
        key = (src_asn, src_city, dst_asn, dst_city)
        if key in self._path_cache:
            return self._path_cache[key]
        as_path = self._routing.path(src_asn, dst_asn)
        if as_path is None:
            self._path_cache[key] = None
            return None
        delay = self._walker.propagation_ms(src_city, as_path, dst_city)
        delay += self._cfg.per_hop_ms * max(0, len(as_path) - 1)
        self._path_cache[key] = delay
        return delay

    def base_rtt_ms(self, src: Endpoint, dst: Endpoint) -> float | None:
        """Deterministic RTT between two endpoints, before jitter.

        The round trip rides the forward BGP path *and* the (possibly
        different) reverse path — the same wire path regardless of which
        side initiates the ping — plus both endpoints' access latency twice.
        A small ordered-pair-specific skew models host-side measurement
        effects, which is all that distinguishes the two ping directions.
        Returns None when either direction lacks a valley-free route.
        """
        base = self._pair_entry((src, dst))[0]
        return None if base != base else base

    def _endpoint_token(self, endpoint: Endpoint) -> object:
        """A hashable pair-cache token for an endpoint, memoized by object.

        The world's endpoints are singletons with unique node ids, so the
        token is normally just the id string (hashed in C, no Python
        ``__hash__`` frame).  An ad-hoc endpoint reusing a known node id
        with different fields (tests do this to pin the pair skew) gets a
        full-fidelity tuple instead, so it can never collide with the
        original.  Memoized entries hold a strong reference to their
        endpoint, which pins ``id(endpoint)`` for the model's lifetime.
        """
        owner = self._ep_owner.setdefault(endpoint.node_id, endpoint)
        if owner is endpoint or owner == endpoint:
            token: object = endpoint.node_id
        else:
            token = (
                endpoint.node_id,
                endpoint.asn,
                endpoint.city_key,
                endpoint.access_ms,
                endpoint.loss_prob,
            )
        key = id(endpoint)
        self._ep_tokens[key] = token
        self._ep_refs[key] = endpoint
        return token

    def _pair_key(self, src: Endpoint, dst: Endpoint) -> tuple:
        tokens = self._ep_tokens
        t1 = tokens.get(id(src))
        if t1 is None:
            t1 = self._endpoint_token(src)
        t2 = tokens.get(id(dst))
        if t2 is None:
            t2 = self._endpoint_token(dst)
        return (t1, t2)

    def _pair_entry(self, pair: tuple[Endpoint, Endpoint]) -> tuple[float, float]:
        src, dst = pair
        key = self._pair_key(src, dst)
        entry = self._pair_cache.get(key)
        if entry is None:
            base = self._base_rtt_uncached(src, dst)
            entry = (
                float("nan") if base is None else base,
                self.loss_probability(src, dst),
            )
            self._pair_cache[key] = entry
        return entry

    # ------------------------------------------------------- batched base RTT

    def set_attachment_grid(
        self, grid: np.ndarray, att_ids: dict[tuple[int, str], int]
    ) -> None:
        """Install a precomputed attachment delay grid (see
        :meth:`RoutingFabric.build_attachment_grid`).

        ``grid[s, t]`` must equal ``path_one_way_ms`` for the corresponding
        attachment pair (NaN = unrouted); the fabric's vectorized builder
        guarantees bit-identical values.
        """
        self._grid = grid
        self._grid_ids = att_ids
        self._att_of = {}

    def attachment_grid(
        self,
    ) -> tuple[np.ndarray, dict[tuple[int, str], int]] | None:
        """The installed ``(grid, attachment -> row)`` pair, or None.

        Exposed for world snapshotting (:mod:`repro.core.worldcache`); the
        returned arrays must be treated as read-only.
        """
        if self._grid is None:
            return None
        return self._grid, self._grid_ids

    def attachment_grid_covers(self, attachments: list[tuple[int, str]]) -> bool:
        """True if the installed grid's rows are exactly ``attachments``.

        Row order matters (it is the grid's index order), so the caller
        passes the same sorted attachment list the grid was built from.
        This is how :meth:`World.ensure_routing_fabric` detects that a
        restored or pre-warmed grid already serves the campaign and skips
        the rebuild.
        """
        return self._grid is not None and list(self._grid_ids) == attachments

    def _attachment_id(self, endpoint: Endpoint) -> int:
        """The endpoint's grid row, or -1 if outside the grid."""
        key = id(endpoint)
        att = self._att_of.get(key)
        if att is None:
            att = self._grid_ids.get((endpoint.asn, endpoint.city_key), -1)
            self._att_of[key] = att
            self._ep_refs.setdefault(key, endpoint)  # pin the id
        return att

    def _one_way_batch(self, keys: list[tuple[int, str, int, str]]) -> list[float]:
        """``path_one_way_ms`` for a key list, final segments vectorized.

        Per key the Python work is the cached path and walk-prefix lookups;
        the final-segment fiber delay, stretch and per-hop arithmetic run
        as one NumPy gather over the whole miss list, in the same operation
        order as the scalar code (bit-identical results).  NaN marks
        unrouted keys.
        """
        cache = self._path_cache
        triples = self._triple_cache
        routing, walker = self._routing, self._walker
        matrix = walker.matrix
        per_hop = self._cfg.per_hop_ms
        out = [0.0] * len(keys)
        miss_at: list[int] = []
        prefix_km: list[float] = []
        end_idx: list[int] = []
        dst_idx: list[int] = []
        stretch: list[float] = []
        hop_ms: list[float] = []
        miss_keys: list[tuple[int, str, int, str]] = []
        nan = float("nan")
        missing = ()
        for j, key in enumerate(keys):
            delay = cache.get(key, missing)
            if delay is not missing:
                out[j] = nan if delay is None else delay
                continue
            src_asn, src_city, dst_asn, dst_city = key
            triple = (src_asn, src_city, dst_asn)
            walk = triples.get(triple, missing)
            if walk is missing:
                as_path = routing.path(src_asn, dst_asn)
                if as_path is None:
                    walk = None
                else:
                    end_city, end, km = walker.walk_prefix(src_city, as_path)
                    walk = (
                        km,
                        end,
                        end_city,
                        walker.carrier_stretch(as_path[-1]),
                        per_hop * (len(as_path) - 1),
                    )
                triples[triple] = walk
            if walk is None:
                cache[key] = None
                out[j] = nan
                continue
            km, end, end_city, carrier, hops = walk
            miss_at.append(j)
            miss_keys.append(key)
            prefix_km.append(km)
            end_idx.append(end)
            # a zero-length final segment multiplies out to +0.0, which is
            # exact, so the scalar code's dst==end special case needs no
            # branch here
            dst_idx.append(end if dst_city == end_city else matrix.index(dst_city))
            stretch.append(carrier)
            hop_ms.append(hops)
        if miss_at:
            seg = matrix.distance_km_pairs(end_idx, dst_idx)
            delays = (
                (np.asarray(prefix_km) + seg * np.asarray(stretch))
                / SPEED_OF_LIGHT_FIBER_KM_PER_MS
                + np.asarray(hop_ms)
            ).tolist()
            for j, key, delay in zip(miss_at, miss_keys, delays):
                cache[key] = delay
                out[j] = delay
        return out

    def _pair_entries(
        self, pairs: Sequence[tuple[Endpoint, Endpoint]]
    ) -> list[tuple[float, float]]:
        """``(base-or-NaN, loss)`` per pair, computing uncached ones in bulk.

        Base-RTT assembly (forward + reverse + access, skew) runs as NumPy
        elementwise expressions in the scalar code's operation order, so the
        cached entries are bit-identical to :meth:`_pair_entry`'s.  One
        cache pass serves the whole (mostly-warm) leg list.
        """
        cache = self._pair_cache
        tokens = self._ep_tokens
        token_of = self._endpoint_token
        keys = []
        append_key = keys.append
        for s, d in pairs:
            t1 = tokens.get(id(s))
            if t1 is None:
                t1 = token_of(s)
            t2 = tokens.get(id(d))
            if t2 is None:
                t2 = token_of(d)
            append_key((t1, t2))
        entries = [cache.get(k) for k in keys]
        if None not in entries:
            return entries
        # dedup misses preserving first-seen order, keeping one
        # representative Endpoint pair per key
        miss_by_key: dict[tuple, tuple[Endpoint, Endpoint]] = {}
        for key, pair, entry in zip(keys, pairs, entries):
            if entry is None and key not in miss_by_key:
                miss_by_key[key] = pair
        misses = list(miss_by_key.values())
        n = len(misses)
        grid = self._grid
        if grid is not None:
            att = self._attachment_id
            src_ids = np.fromiter((att(s) for s, _ in misses), np.intp, n)
            dst_ids = np.fromiter((att(d) for _, d in misses), np.intp, n)
            on_grid = (src_ids >= 0) & (dst_ids >= 0)
            fwd = np.where(on_grid, grid[src_ids, dst_ids], np.nan)
            rev = np.where(on_grid, grid[dst_ids, src_ids], np.nan)
            off = np.nonzero(~on_grid)[0]
            if off.size:
                off_list = off.tolist()
                off_pairs = [misses[i] for i in off_list]
                both = self._one_way_batch(
                    [(s.asn, s.city_key, d.asn, d.city_key) for s, d in off_pairs]
                    + [(d.asn, d.city_key, s.asn, s.city_key) for s, d in off_pairs]
                )
                fwd[off] = both[: off.size]
                rev[off] = both[off.size :]
        else:
            both = self._one_way_batch(
                [(s.asn, s.city_key, d.asn, d.city_key) for s, d in misses]
                + [(d.asn, d.city_key, s.asn, s.city_key) for s, d in misses]
            )
            fwd, rev = np.asarray(both[:n]), np.asarray(both[n:])
        cfg = self._cfg
        access = np.fromiter(
            (2.0 * (s.access_ms + d.access_ms) for s, d in misses), float, n
        )
        skew = np.fromiter(
            (_pair_unit_hash(s.node_id, d.node_id) for s, d in misses), float, n
        )
        base = (fwd + rev + access) * (
            1.0 + (2.0 * skew - 1.0) * cfg.asymmetry_frac
        )
        # loss stays scalar-per-pair: its three multiplications must keep
        # the scalar code's left-to-right association to stay bit-identical
        loss = [self.loss_probability(s, d) for s, d in misses]
        for key, b, p in zip(miss_by_key, base.tolist(), loss):
            cache[key] = (b, p)
        return [
            e if e is not None else cache[k] for k, e in zip(keys, entries)
        ]

    def warm_pairs(self, pairs: Sequence[tuple[Endpoint, Endpoint]]) -> None:
        """Resolve a leg list's deterministic (base, loss) entries in bulk.

        Purely a cache warmer: subsequent scalar calls
        (:meth:`sample_rtt_ms`, :meth:`base_rtt_ms`) for the same pairs hit
        the pair cache and return bit-identical values while consuming the
        RNG exactly as before.  The colo pipeline's geolocation filter uses
        this to batch its one-time verification without perturbing the
        verified pool (see :class:`~repro.core.colo.ColoRelayPipeline`).
        """
        self._pair_entries(pairs)

    # ----------------------------------------------------------- pair grid

    def _one_way_grid(
        self, rows: Sequence[Endpoint], cols: Sequence[Endpoint]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(rows × cols) forward and reverse one-way delay matrices.

        With the attachment grid installed and every endpoint on it, both
        matrices are two fancy-indexed gathers.  Otherwise (no fabric yet,
        or off-grid endpoints such as pipeline monitors) every product key
        goes through :meth:`_one_way_batch`, which serves warm keys from the
        path cache — bit-identical values either way, NaN = unrouted.
        """
        r, c = len(rows), len(cols)
        grid = self._grid
        if grid is not None:
            att = self._attachment_id
            row_ids = np.fromiter((att(e) for e in rows), np.intp, r)
            col_ids = np.fromiter((att(e) for e in cols), np.intp, c)
            if (row_ids >= 0).all() and (col_ids >= 0).all():
                fwd = grid[row_ids[:, np.newaxis], col_ids[np.newaxis, :]]
                rev = grid[col_ids[np.newaxis, :], row_ids[:, np.newaxis]]
                return fwd, rev
        row_keys = [(e.asn, e.city_key) for e in rows]
        col_keys = [(e.asn, e.city_key) for e in cols]
        keys = [rk + ck for rk in row_keys for ck in col_keys]
        keys += [ck + rk for rk in row_keys for ck in col_keys]
        both = np.asarray(self._one_way_batch(keys))
        return both[: r * c].reshape(r, c), both[r * c :].reshape(r, c)

    def _skew_code(self, node_id: str) -> int:
        """The endpoint's row/column in the skew memo, growing it on demand."""
        codes = self._skew_codes
        code = codes.get(node_id)
        if code is None:
            code = len(codes)
            codes[node_id] = code
            cap = self._skew_matrix.shape[0]
            if code >= cap:
                grown = np.full((max(256, 2 * cap),) * 2, np.nan)
                if cap:
                    grown[:cap, :cap] = self._skew_matrix
                self._skew_matrix = grown
        return code

    def _skew_grid(
        self, row_ids: Sequence[str], col_ids: Sequence[str]
    ) -> np.ndarray:
        """(rows × cols) deterministic per-ordered-pair skew units.

        Warm pairs are one gather out of the memo matrix; NaN cells (first
        visit of the ordered pair) are hashed scalar and written back.
        """
        code = self._skew_code
        rows = np.fromiter((code(a) for a in row_ids), np.intp, len(row_ids))
        cols = np.fromiter((code(b) for b in col_ids), np.intp, len(col_ids))
        memo = self._skew_matrix  # after every code is assigned (may grow)
        sub = memo[np.ix_(rows, cols)]
        miss_i, miss_j = np.nonzero(np.isnan(sub))
        if miss_i.size:
            blake = hashlib.blake2b
            from_bytes = int.from_bytes
            fresh = np.asarray(
                [
                    from_bytes(
                        blake(
                            f"{row_ids[i]}|{col_ids[j]}".encode("utf-8"),
                            digest_size=8,
                        ).digest(),
                        "big",
                    )
                    / 2**64
                    for i, j in zip(miss_i.tolist(), miss_j.tolist())
                ]
            )
            memo[rows[miss_i], cols[miss_j]] = fresh
            sub[miss_i, miss_j] = fresh
        return sub

    def pair_grid(
        self, rows: Sequence[Endpoint], cols: Sequence[Endpoint]
    ) -> PairGrid:
        """Base-RTT and loss matrices for every ordered (row, col) pair.

        Entries are bit-identical to what :meth:`_pair_entries` resolves for
        the same ordered pair: the base assembly mirrors the scalar code's
        operation order term by term ((fwd + rev + access) * skew factor,
        loss as the same left-to-right product), and the one-way delays come
        from the same attachment grid / path cache.  Building the grid costs
        O(rows + cols) Python work per endpoint plus one cached hash per
        ordered pair; gathering a leg's entry afterwards is pure NumPy
        indexing — this replaces the per-leg token/cache loop on the
        campaign's measurement hot path.
        """
        r, c = len(rows), len(cols)
        fwd, rev = self._one_way_grid(rows, cols)
        access = 2.0 * (
            np.fromiter((e.access_ms for e in rows), float, r)[:, np.newaxis]
            + np.fromiter((e.access_ms for e in cols), float, c)[np.newaxis, :]
        )
        skew = self._skew_grid(
            [e.node_id for e in rows], [e.node_id for e in cols]
        )
        cfg = self._cfg
        base = (fwd + rev + access) * (
            1.0 + (2.0 * skew - 1.0) * cfg.asymmetry_frac
        )
        loss = 1.0 - (
            (1.0 - cfg.base_loss_prob)
            * (1.0 - np.fromiter((e.loss_prob for e in rows), float, r))[:, np.newaxis]
            * (1.0 - np.fromiter((e.loss_prob for e in cols), float, c))[np.newaxis, :]
        )
        return PairGrid(base=base, loss=loss)

    def _base_rtt_uncached(self, src: Endpoint, dst: Endpoint) -> float | None:
        forward = self.path_one_way_ms(src.asn, src.city_key, dst.asn, dst.city_key)
        if forward is None:
            return None
        reverse = self.path_one_way_ms(dst.asn, dst.city_key, src.asn, src.city_key)
        if reverse is None:
            return None
        rtt = forward + reverse + 2.0 * (src.access_ms + dst.access_ms)
        skew = (2.0 * _pair_unit_hash(src.node_id, dst.node_id) - 1.0) * self._cfg.asymmetry_frac
        return rtt * (1.0 + skew)

    # --------------------------------------------------------- sampled RTT

    def loss_probability(self, src: Endpoint, dst: Endpoint) -> float:
        """Per-packet loss probability for the pair."""
        p_deliver = (
            (1.0 - self._cfg.base_loss_prob)
            * (1.0 - src.loss_prob)
            * (1.0 - dst.loss_prob)
        )
        return 1.0 - p_deliver

    def sample_rtt_ms(
        self, src: Endpoint, dst: Endpoint, rng: np.random.Generator
    ) -> float | None:
        """One ping outcome: an RTT in ms, or None for a lost packet.

        ``rng`` is advanced exactly once per loss decision and per delivered
        packet's jitter draw, so the caller controls determinism by handing
        in a named stream.
        """
        base = self.base_rtt_ms(src, dst)
        if base is None:
            return None
        if rng.random() < self.loss_probability(src, dst):
            return None
        cfg = self._cfg
        rtt = base * float(rng.lognormal(mean=0.0, sigma=cfg.jitter_sigma))
        rtt += float(rng.exponential(cfg.queueing_scale_ms))
        if rng.random() < cfg.spike_prob:
            low, high = cfg.spike_range_ms
            rtt += float(rng.uniform(low, high))
        return rtt

    def sample_rtt_batch(
        self, src: Endpoint, dst: Endpoint, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """``count`` ping outcomes for one pair in vectorized RNG draws.

        Returns a ``(count,)`` float array; NaN marks a lost packet (or, for
        every entry, an unrouted pair).  The per-packet model is identical to
        :meth:`sample_rtt_ms` — same base RTT, same jitter / queueing / spike
        / loss distributions — but all packets' terms come from a handful of
        vectorized draws (see :meth:`sample_rtt_matrix`), so the random
        stream is consumed in a different order than ``count`` scalar calls
        would consume it.
        """
        return self.sample_rtt_matrix([(src, dst)], rng, count)[0]

    def sample_rtt_matrix(
        self,
        pairs: Sequence[tuple[Endpoint, Endpoint]],
        rng: np.random.Generator,
        count: int,
    ) -> np.ndarray:
        """Ping outcomes for a whole leg list in vectorized RNG draws.

        Returns a ``(len(pairs) × count)`` float array; NaN marks a lost
        packet, and every entry of an unrouted pair's row.  The loss and
        spike uniforms for *all* packets of *all* pairs come out of one
        RNG call, jitter and queueing out of one each — four RNG calls
        per batch, and only three when ``spike_prob`` is zero (the spike
        block is skipped entirely).

        RNG-stream caveat (as with PR 1's vectorization): fusing the two
        uniform blocks consumes the random stream in a different order
        than the earlier five-draw engine, so same-seed per-packet values
        differ from it while every per-packet distribution is unchanged;
        same-seed runs of this engine are bit-identical to each other.
        """
        n = len(pairs)
        if n == 0:
            return np.full((n, count), np.nan)
        entries = self._pair_entries(pairs)
        base = np.fromiter((e[0] for e in entries), float, n)
        loss = np.fromiter((e[1] for e in entries), float, n)
        return self.sample_rtt_entries(base, loss, rng, count)

    def sample_rtt_entries(
        self,
        base: np.ndarray,
        loss: np.ndarray,
        rng: np.random.Generator,
        count: int,
    ) -> np.ndarray:
        """Ping outcomes for legs whose ``(base, loss)`` entries are given.

        The vectorized sampling tail of :meth:`sample_rtt_matrix`: callers
        that gathered their legs' deterministic terms from a
        :class:`PairGrid` hand them in directly, skipping the per-leg pair
        resolution entirely.  RNG consumption is identical to
        :meth:`sample_rtt_matrix` for the same entry vectors, so the two
        paths produce bit-identical packets.
        """
        n = len(base)
        out = np.full((n, count), np.nan)
        if n == 0:
            return out
        routed = ~np.isnan(base)
        m = int(np.count_nonzero(routed))
        if m == 0:
            return out
        cfg = self._cfg
        shape = (m, count)
        spikes_on = cfg.spike_prob > 0.0
        if spikes_on:
            u = rng.random((2, m, count))
            u_loss, u_spike = u[0], u[1]
        else:
            u_loss = rng.random(shape)
        jitter = rng.lognormal(mean=0.0, sigma=cfg.jitter_sigma, size=shape)
        queue = rng.exponential(cfg.queueing_scale_ms, size=shape)
        if m == n:
            rtt = base[:, np.newaxis] * jitter + queue
        else:
            rtt = base[routed, np.newaxis] * jitter + queue
        if spikes_on:
            low, high = cfg.spike_range_ms
            spike = rng.uniform(low, high, size=shape)
            rtt += np.where(u_spike < cfg.spike_prob, spike, 0.0)
        rtt[u_loss < loss[routed, np.newaxis]] = np.nan
        if m == n:
            return rtt
        out[routed] = rtt
        return out

    # ------------------------------------------------------------- insight

    def as_path(self, src: Endpoint, dst: Endpoint) -> list[int] | None:
        """The BGP AS path the pair's traffic follows (None if unrouted)."""
        path = self._routing.path(src.asn, dst.asn)
        # copy: the routing layer caches and reuses its path lists
        return None if path is None else list(path)

    def waypoints(self, src: Endpoint, dst: Endpoint) -> list[str] | None:
        """The city waypoints the pair's traffic follows (None if unrouted)."""
        as_path = self._routing.path(src.asn, dst.asn)
        if as_path is None:
            return None
        return self._walker.waypoints(src.city_key, as_path, dst.city_key)
