"""RTT model over the routed topology: deterministic base latency from
geography + BGP, stochastic per-packet jitter/loss, and the ping and
traceroute engines the measurement layer drives."""

from repro.latency.backbone import BackboneStretch
from repro.latency.model import Endpoint, LatencyConfig, LatencyModel
from repro.latency.ping import PingEngine, PingResult
from repro.latency.traceroute import TracerouteEngine, TracerouteHop

__all__ = [
    "BackboneStretch",
    "Endpoint",
    "LatencyConfig",
    "LatencyModel",
    "PingEngine",
    "PingResult",
    "TracerouteEngine",
    "TracerouteHop",
]
