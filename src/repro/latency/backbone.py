"""Per-AS backbone stretch factors.

Between two interconnection points, traffic rides the carrying AS's
*backbone*, which never follows the geodesic exactly: real networks route
over their own fiber topology, with detours that differ per operator.  The
stretch factor scales the geodesic fiber delay of every intra-AS segment.

Factors are deterministic (hashed from the ASN) and drawn from a range
characteristic of the operator class: content/cloud backbones are
engineered for latency, tier-1s are good, regional carriers and eyeball
ISPs meander more.  This heterogeneity is what produces the paper's many
*small* latency improvements — a relayed path hopping between efficient
core backbones shaves a few milliseconds off a direct path that rides two
national carriers, even when both follow the same geography.
"""

from __future__ import annotations

import hashlib

from repro.topology.graph import ASGraph
from repro.topology.types import ASType

#: Stretch ranges (low, high) per AS role, multiplying geodesic fiber delay.
STRETCH_RANGES: dict[ASType, tuple[float, float]] = {
    ASType.TRANSIT_GLOBAL: (1.10, 1.30),
    ASType.TRANSIT_REGIONAL: (1.15, 1.50),
    ASType.CONTENT: (1.05, 1.20),
    ASType.CLOUD: (1.05, 1.22),
    ASType.RESEARCH: (1.05, 1.20),
    ASType.EYEBALL: (1.20, 1.60),
    ASType.ENTERPRISE: (1.30, 1.60),
}


def _unit_hash(asn: int) -> float:
    digest = hashlib.blake2b(str(asn).encode("ascii"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


class BackboneStretch:
    """Deterministic per-AS stretch factors over an :class:`ASGraph`."""

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        self._cache: dict[int, float] = {}

    def factor(self, asn: int) -> float:
        """Stretch factor (>= 1) for the AS's backbone segments."""
        cached = self._cache.get(asn)
        if cached is not None:
            return cached
        as_type = self._graph.get_as(asn).as_type
        low, high = STRETCH_RANGES[as_type]
        value = low + (high - low) * _unit_hash(asn)
        self._cache[asn] = value
        return value
