"""Ping engine: batches of single-packet probes between endpoints.

The campaign workflow (Sec 2.5) sends 6 single-packet pings per pair per
30-minute window, 5 minutes apart, and summarises each batch by its median,
requiring at least 3 valid replies.  The engine implements the batch
semantics; the *policy* (how many batches, when) lives in the scheduler.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.latency.model import Endpoint, LatencyModel
from repro.util.stats import median


@dataclass(frozen=True, slots=True)
class PingResult:
    """Outcome of a batch of pings between one pair of endpoints.

    Attributes:
        src_id: Pinging node id.
        dst_id: Target node id.
        rtts_ms: One entry per packet; None marks a lost packet.
    """

    src_id: str
    dst_id: str
    rtts_ms: tuple[float | None, ...]

    @property
    def valid_rtts(self) -> tuple[float, ...]:
        """The delivered packets' RTTs."""
        return tuple(r for r in self.rtts_ms if r is not None)

    @property
    def num_sent(self) -> int:
        """Packets sent."""
        return len(self.rtts_ms)

    @property
    def num_received(self) -> int:
        """Packets answered."""
        return len(self.valid_rtts)

    def median_rtt(self, min_valid: int = 3) -> float | None:
        """Median RTT of the batch, or None with fewer than ``min_valid``
        replies (the paper's ">= 3 valid RTTs per window" rule)."""
        valid = self.valid_rtts
        if len(valid) < min_valid:
            return None
        return median(valid)


class PingEngine:
    """Executes ping batches against a :class:`LatencyModel`."""

    def __init__(self, model: LatencyModel) -> None:
        self._model = model

    @property
    def model(self) -> LatencyModel:
        """The latency model answering the probes."""
        return self._model

    @staticmethod
    def _row_to_rtts(row: np.ndarray) -> tuple[float | None, ...]:
        return tuple(float(v) if v == v else None for v in row)

    def ping(
        self,
        src: Endpoint,
        dst: Endpoint,
        rng: np.random.Generator,
        count: int = 6,
    ) -> PingResult:
        """Send ``count`` single-packet pings from ``src`` to ``dst``.

        The batch's packets are sampled in vectorized RNG draws (see
        :meth:`LatencyModel.sample_rtt_batch`).

        Raises:
            MeasurementError: if ``count`` is not positive.
        """
        if count <= 0:
            raise MeasurementError(f"ping count must be positive, got {count}")
        row = self._model.sample_rtt_batch(src, dst, rng, count)
        return PingResult(
            src_id=src.node_id, dst_id=dst.node_id, rtts_ms=self._row_to_rtts(row)
        )

    def ping_many(
        self,
        legs: Sequence[tuple[Endpoint, Endpoint]],
        rng: np.random.Generator,
        count: int = 6,
    ) -> list[PingResult]:
        """Send ``count``-packet batches over every ``(src, dst)`` leg.

        All legs' packets are sampled together in a handful of vectorized
        RNG draws; results come back in leg order.

        Raises:
            MeasurementError: if ``count`` is not positive.
        """
        if count <= 0:
            raise MeasurementError(f"ping count must be positive, got {count}")
        matrix = self._model.sample_rtt_matrix(legs, rng, count)
        return [
            PingResult(
                src_id=src.node_id, dst_id=dst.node_id, rtts_ms=self._row_to_rtts(row)
            )
            for (src, dst), row in zip(legs, matrix)
        ]

    def median_many(
        self,
        legs: Sequence[tuple[Endpoint, Endpoint]],
        rng: np.random.Generator,
        count: int = 6,
        min_valid: int = 3,
    ) -> np.ndarray:
        """Batch medians for every leg, skipping per-packet object churn.

        Returns a ``(len(legs),)`` float array: the batch median where at
        least ``min_valid`` packets were answered, NaN otherwise — the same
        numbers ``ping(...).median_rtt(min_valid)`` produces, computed
        vectorized.  This is the campaign's hot path.

        Raises:
            MeasurementError: if ``count`` is not positive.
        """
        if count <= 0:
            raise MeasurementError(f"ping count must be positive, got {count}")
        matrix = self._model.sample_rtt_matrix(legs, rng, count)
        return self._batch_medians(matrix, min_valid)

    def median_from_entries(
        self,
        base: np.ndarray,
        loss: np.ndarray,
        rng: np.random.Generator,
        count: int = 6,
        min_valid: int = 3,
    ) -> np.ndarray:
        """Batch medians for legs whose ``(base, loss)`` entries are given.

        The grid-indexed twin of :meth:`median_many`: the campaign gathers
        each leg's deterministic terms from a per-round
        :class:`~repro.latency.model.PairGrid` and hands them in, so no
        per-leg pair resolution runs at all.  Same sampling, same RNG
        consumption, bit-identical medians for the same entry vectors.

        Raises:
            MeasurementError: if ``count`` is not positive.
        """
        if count <= 0:
            raise MeasurementError(f"ping count must be positive, got {count}")
        matrix = self._model.sample_rtt_entries(base, loss, rng, count)
        return self._batch_medians(matrix, min_valid)

    @staticmethod
    def _batch_medians(matrix: np.ndarray, min_valid: int) -> np.ndarray:
        valid = np.count_nonzero(~np.isnan(matrix), axis=1)
        # NaN sorts to the end, so row r's valid RTTs occupy the first
        # valid[r] sorted slots; gather the middle one(s) directly (much
        # faster than np.nanmedian's masked pass, identical values)
        ordered = np.sort(matrix, axis=1)
        rows = np.arange(matrix.shape[0])
        lo = ordered[rows, np.maximum(0, (valid - 1) // 2)]
        hi = ordered[rows, np.maximum(0, valid // 2)]
        return np.where(valid >= max(min_valid, 1), (lo + hi) / 2.0, np.nan)

    def is_responsive(
        self,
        src: Endpoint,
        dst: Endpoint,
        rng: np.random.Generator,
        count: int = 3,
    ) -> bool:
        """True if at least one of ``count`` probe packets is answered."""
        result = self.ping(src, dst, rng, count=count)
        return result.num_received > 0

    def any_response_many(
        self,
        legs: Sequence[tuple[Endpoint, Endpoint]],
        rng: np.random.Generator,
        count: int = 3,
    ) -> list[bool]:
        """Per leg: did at least one of ``count`` probe packets answer?

        The batched form of :meth:`is_responsive` — all legs' probes come
        out of one vectorized sampling pass, so a relay-liveness sweep
        costs a handful of RNG calls instead of one batch per candidate.

        Raises:
            MeasurementError: if ``count`` is not positive.
        """
        if count <= 0:
            raise MeasurementError(f"ping count must be positive, got {count}")
        matrix = self._model.sample_rtt_matrix(legs, rng, count)
        return np.any(~np.isnan(matrix), axis=1).tolist()
