"""Traceroute engine over the waypoint model.

Periscope (the looking-glass federation the paper uses for RTT-based
geolocation, Sec 2.2 filter 5) only offers traceroute, so the paper reads
the RTT "yielded on the last hop to the IP".  This engine reproduces that
interface: it reports one hop per city waypoint of the geographic path,
with cumulative RTTs, the last hop being the destination itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.cities import city as city_of
from repro.geo.distance import fiber_delay_ms
from repro.latency.model import Endpoint, LatencyModel
from repro.routing.geopath import GeoPathWalker


@dataclass(frozen=True, slots=True)
class TracerouteHop:
    """One line of traceroute output.

    Attributes:
        hop: 1-based hop index.
        city_key: City of the responding router (the simulation's stand-in
            for a resolved router interface).
        rtt_ms: Cumulative RTT to the hop, or None if it did not answer.
    """

    hop: int
    city_key: str
    rtt_ms: float | None


class TracerouteEngine:
    """Produces hop-by-hop views of the geographic path between endpoints."""

    def __init__(self, model: LatencyModel, walker: GeoPathWalker) -> None:
        self._model = model
        self._walker = walker

    def trace(
        self, src: Endpoint, dst: Endpoint, rng: np.random.Generator
    ) -> list[TracerouteHop]:
        """Trace from ``src`` to ``dst``; empty list when unrouted.

        Each intermediate hop responds with probability 0.9 (routers often
        drop TTL-expired probes); the final hop answers iff a direct ping
        would.  Hop RTTs are the deterministic cumulative delay plus small
        per-probe jitter.
        """
        as_path = self._model.as_path(src, dst)
        if as_path is None:
            return []
        waypoints = self._walker.waypoints(src.city_key, as_path, dst.city_key)
        hops: list[TracerouteHop] = []
        cumulative = src.access_ms
        previous = waypoints[0]
        for index, key in enumerate(waypoints[1:], start=1):
            cumulative += self._segment_ms(previous, key)
            previous = key
            responded = rng.random() < 0.9
            rtt = 2.0 * cumulative * float(rng.lognormal(0.0, 0.02)) if responded else None
            hops.append(TracerouteHop(hop=index, city_key=key, rtt_ms=rtt))
        # final hop: the destination endpoint itself
        final_rtt = self._model.sample_rtt_ms(src, dst, rng)
        hops.append(
            TracerouteHop(hop=len(waypoints), city_key=dst.city_key, rtt_ms=final_rtt)
        )
        return hops

    def last_hop_rtt(
        self, src: Endpoint, dst: Endpoint, rng: np.random.Generator
    ) -> float | None:
        """RTT on the last hop of a trace (what Periscope measures).

        The final hop's RTT is a direct ping of the destination and does
        not depend on the intermediate hops' probe outcomes, so this skips
        the per-hop response/jitter sampling a full :meth:`trace` pays
        (consuming correspondingly fewer RNG values).
        """
        if self._model.as_path(src, dst) is None:
            return None
        return self._model.sample_rtt_ms(src, dst, rng)

    @staticmethod
    def _segment_ms(a_key: str, b_key: str) -> float:
        return fiber_delay_ms(city_of(a_key).location, city_of(b_key).location)
