"""repro — reproduction of "Shortcuts through Colocation Facilities" (IMC 2017).

The package builds a deterministic, geographically-embedded synthetic Internet
(AS-level topology, valley-free BGP, facility/IXP ecosystem, RTT model and
measurement-infrastructure emulators) and re-implements the paper's full
measurement methodology on top of it: endpoint selection at eyeball networks,
relay selection at colocation facilities and elsewhere, speed-of-light
feasibility pruning, the round-based ping campaign, overlay path stitching and
all of the paper's analyses (Figures 1-4, Table 1 and the in-text results).

Quickstart::

    from repro import build_world, CampaignConfig, MeasurementCampaign

    world = build_world(seed=7)
    campaign = MeasurementCampaign(world, CampaignConfig(num_rounds=4))
    result = campaign.run()
    print(result.summary())

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every figure and table.
"""

from repro.world import World, WorldConfig, build_world
from repro.core.config import CampaignConfig
from repro.core.campaign import MeasurementCampaign
from repro.core.results import CampaignResult, PairObservation, RoundResult
from repro.core.sweep import (
    SweepConfig,
    SweepEntry,
    SweepRequest,
    SweepResult,
    run_sweep,
)
from repro.core.montecarlo import (
    MonteCarloConfig,
    MonteCarloManager,
    ParamSpec,
    run_montecarlo,
)
from repro.core.table import ObservationTable, TablePools
from repro.routing.fabric import RoutingFabric
from repro.scenarios import (
    Regime,
    Scenario,
    all_scenarios,
    get_regime,
    get_scenario,
    list_regimes,
    list_scenarios,
    scenario_names,
)
from repro.service import RelayDirectory, ShortcutService
from repro.timeline import (
    LinkDegradation,
    ProbeChurn,
    RelayOutage,
    TimelineConfig,
    TrafficShift,
    rolling_outages,
)
from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.ranking import TopRelayAnalysis
from repro.analysis.facilities import FacilityTable
from repro.analysis.stability import StabilityAnalysis

__version__ = "1.5.0"

__all__ = [
    "World",
    "WorldConfig",
    "build_world",
    "CampaignConfig",
    "MeasurementCampaign",
    "CampaignResult",
    "RoundResult",
    "PairObservation",
    "ObservationTable",
    "TablePools",
    "SweepConfig",
    "SweepEntry",
    "SweepRequest",
    "SweepResult",
    "run_sweep",
    "MonteCarloConfig",
    "MonteCarloManager",
    "ParamSpec",
    "run_montecarlo",
    "RoutingFabric",
    "Regime",
    "Scenario",
    "all_scenarios",
    "get_regime",
    "get_scenario",
    "list_regimes",
    "list_scenarios",
    "scenario_names",
    "RelayDirectory",
    "ShortcutService",
    "TimelineConfig",
    "RelayOutage",
    "ProbeChurn",
    "LinkDegradation",
    "TrafficShift",
    "rolling_outages",
    "ImprovementAnalysis",
    "TopRelayAnalysis",
    "FacilityTable",
    "StabilityAnalysis",
    "__version__",
]
