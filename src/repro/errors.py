"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems raise the most
specific subclass that applies.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """A configuration object contains an invalid or inconsistent value."""


class UnknownScenarioError(ConfigError):
    """A scenario or Monte-Carlo regime name is not in its registry.

    Subclasses :class:`ConfigError` so existing ``except ConfigError``
    call sites keep working; the message lists the registered names."""


class GeoError(ReproError):
    """Invalid geographic input (bad coordinates, unknown country/city)."""


class AddressError(ReproError):
    """Invalid IPv4 address or prefix input."""


class TopologyError(ReproError):
    """The AS-level topology is missing an entity or violates an invariant."""


class RoutingError(ReproError):
    """No valid route exists, or routing state is inconsistent."""


class MeasurementError(ReproError):
    """A measurement request is invalid or violates platform constraints."""


class DatasetError(ReproError):
    """A dataset substrate received an invalid query or record."""


class AnalysisError(ReproError):
    """An analysis was asked to operate on unsuitable result data."""


class ServiceError(ReproError):
    """The serving layer received an invalid query, ingest or snapshot."""


class EmptyDirectoryError(ServiceError):
    """A query or stream was requested from a directory with no history."""


class UnknownEndpointError(ServiceError):
    """An endpoint code is outside the directory's known range (a caller
    bug, unlike code -1 which means "valid id, never observed" and falls
    back to the direct tier)."""


class UnknownCountryError(ServiceError):
    """A country name or code does not exist in the directory's pools."""


class TimelineError(ReproError):
    """A fault-timeline event or schedule is invalid."""


class WorldCacheError(ReproError):
    """A world snapshot could not be captured or restored.

    Raised only for caller bugs (capturing before the fabric is built,
    restoring onto a mismatched world); unreadable or stale cache *files*
    never raise — they are treated as misses and rebuilt."""
