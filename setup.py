"""Legacy setup shim so `pip install -e .` works without wheel/pep517."""
from setuptools import setup

setup()
