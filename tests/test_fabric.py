"""Equivalence suite for the precomputed routing fabric.

The fabric's batched, level-synchronous relaxation must reproduce the lazy
scalar :class:`BGPRouting` computation *exactly* — same route classes, same
distances, same lowest-next-hop-ASN tie-breaks — on hand-built topologies
and on generated worlds.  The scalar code stays in the tree as the
reference implementation precisely so this suite can compare against it.
"""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.net.ipv4 import IPv4Prefix
from repro.routing.bgp import BGPRouting
from repro.routing.fabric import GeoWalkMemo, RoutingFabric
from repro.topology.graph import ASGraph
from repro.topology.types import ASType, AutonomousSystem


def _mk_graph(n: int) -> ASGraph:
    g = ASGraph()
    for asn in range(1, n + 1):
        g.add_as(
            AutonomousSystem(
                asn=asn,
                name=f"AS{asn}",
                as_type=ASType.EYEBALL,
                cc="DE",
                pop_cities=("Frankfurt/DE",),
                prefixes=(IPv4Prefix.parse(f"10.{asn}.0.0/16"),),
            )
        )
    return g


CITY = ["Frankfurt/DE"]


def _fabric_all(graph: ASGraph) -> RoutingFabric:
    fabric = RoutingFabric(graph)
    fabric.ensure(graph.asns())
    return fabric


def _assert_tables_equal(graph: ASGraph, destinations=None) -> None:
    reference = BGPRouting(graph)  # no fabric: pure scalar computation
    fabric = _fabric_all(graph)
    for dst in destinations if destinations is not None else graph.asns():
        assert fabric.table_to(dst) == reference._compute_table(dst), f"dst {dst}"


class TestHandBuiltEquivalence:
    def test_chain(self):
        g = _mk_graph(3)
        g.add_c2p(1, 2, CITY)
        g.add_c2p(2, 3, CITY)
        _assert_tables_equal(g)

    def test_peer_valley(self):
        g = _mk_graph(5)
        g.add_p2p(1, 2, CITY)
        g.add_p2p(2, 3, CITY)
        g.add_c2p(4, 1, CITY)
        g.add_c2p(5, 3, CITY)
        _assert_tables_equal(g)
        fabric = _fabric_all(g)
        assert fabric.path(4, 5) is None  # two peer hops: valley-free forbids
        assert fabric.path(1, 3) is None

    def test_customer_preferred_even_if_longer(self):
        g = _mk_graph(6)
        g.add_c2p(2, 1, CITY)
        g.add_c2p(3, 2, CITY)
        g.add_c2p(6, 3, CITY)
        g.add_c2p(6, 5, CITY)
        g.add_p2p(1, 5, CITY)
        _assert_tables_equal(g)
        assert _fabric_all(g).path(1, 6) == [1, 2, 3, 6]

    def test_lowest_next_hop_tiebreak(self):
        g = _mk_graph(4)
        g.add_c2p(1, 2, CITY)
        g.add_c2p(1, 3, CITY)
        g.add_c2p(2, 4, CITY)
        g.add_c2p(3, 4, CITY)
        _assert_tables_equal(g)
        assert _fabric_all(g).path(1, 4) == [1, 2, 4]

    def test_self_path_even_for_unknown_asn(self):
        g = _mk_graph(2)
        g.add_c2p(1, 2, CITY)
        fabric = _fabric_all(g)
        assert fabric.path(1, 1) == [1]
        assert fabric.path(99, 99) == [99]  # scalar path() behaves the same

    def test_unknown_source_is_unreachable(self):
        g = _mk_graph(2)
        g.add_c2p(1, 2, CITY)
        assert _fabric_all(g).path(99, 2) is None

    def test_ensure_rejects_unknown_destination(self):
        g = _mk_graph(2)
        g.add_c2p(1, 2, CITY)
        with pytest.raises(TopologyError):
            RoutingFabric(g).ensure([99])

    def test_ensure_is_incremental(self):
        g = _mk_graph(3)
        g.add_c2p(1, 2, CITY)
        g.add_c2p(2, 3, CITY)
        fabric = RoutingFabric(g)
        assert fabric.ensure([2]) == 1
        assert fabric.covers(2) and not fabric.covers(3)
        assert fabric.ensure([2, 3]) == 1  # only the missing one computed
        assert fabric.num_destinations() == 2


class TestSeededWorldEquivalence:
    def test_tables_identical_on_seeded_world(self, small_world):
        graph = small_world.graph
        reference = BGPRouting(graph)
        fabric = _fabric_all(graph)
        for dst in graph.asns():
            assert fabric.table_to(dst) == reference._compute_table(dst), f"dst {dst}"

    def test_paths_identical_on_seeded_world(self, small_world):
        graph = small_world.graph
        reference = BGPRouting(graph)
        fabric = _fabric_all(graph)
        asns = graph.asns()
        checked = 0
        for src in asns[::3]:
            for dst in asns[::5]:
                assert reference._compute_path(src, dst) == fabric.path(src, dst)
                checked += 1
        assert checked > 1000

    def test_world_routing_serves_fabric_tables(self, small_world):
        """The world's BGPRouting delegates to its fabric once built."""
        small_world.ensure_routing_fabric()
        fabric = small_world.fabric
        assert fabric.num_destinations() > 0
        dst = small_world.campaign_destination_asns()[0]
        assert fabric.covers(dst)
        assert small_world.routing.table_to(dst) == fabric.table_to(dst)

    def test_worlds_same_seed_build_identical_fabrics(self):
        from repro.topology.config import TopologyConfig
        from repro.world import WorldConfig, build_world

        config = WorldConfig(topology=TopologyConfig(country_limit=8))
        w1 = build_world(seed=5, config=config)
        w2 = build_world(seed=5, config=config)
        f1 = w1.ensure_routing_fabric()
        f2 = w2.ensure_routing_fabric()
        assert f1.num_destinations() == f2.num_destinations()
        for dst in w1.campaign_destination_asns()[:25]:
            assert f1.table_to(dst) == f2.table_to(dst)


class TestFabricArrays:
    def test_predecessor_arrays_are_int32(self, small_world):
        fabric = _fabric_all(small_world.graph)
        batch = fabric._batches[0]
        assert batch.next_hop.dtype == np.int32
        assert batch.rclass.dtype == np.int8

    def test_walk_memo_shared_with_walker(self, small_world):
        memo = small_world.fabric.walk_memo
        assert isinstance(memo, GeoWalkMemo)
        asns = small_world.graph.asns()
        path = small_world.routing.path(asns[-1], asns[0])
        assert path is not None
        src_city = small_world.graph.get_as(path[0]).primary_city
        dst_city = small_world.graph.get_as(path[-1]).primary_city
        before = len(memo)
        small_world.walker.propagation_ms(src_city, path, dst_city)
        assert len(memo) >= before  # walk prefixes land in the shared memo
        assert (src_city, tuple(path)) in memo.prefixes
