"""Every example script must run headlessly.

The examples share the memoized tiny-world fixture in
``examples/_shared.py`` (shrunk via the ``REPRO_EXAMPLE_*`` environment
overrides), so the whole suite costs one world build and one campaign.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


@pytest.fixture(scope="module", autouse=True)
def tiny_example_environment(monkeypatch_module):
    monkeypatch_module.setenv("REPRO_EXAMPLE_COUNTRIES", "8")
    monkeypatch_module.setenv("REPRO_EXAMPLE_ROUNDS", "2")
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


@pytest.fixture(scope="module")
def monkeypatch_module():
    from _pytest.monkeypatch import MonkeyPatch

    mp = MonkeyPatch()
    yield mp
    mp.undo()


def _run(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


def test_run_all_covers_every_script():
    run_all = importlib.import_module("run_all")
    scripts = {
        p.stem
        for p in EXAMPLES_DIR.glob("*.py")
        if not p.stem.startswith("_") and p.stem != "run_all"
    }
    assert set(run_all.EXAMPLES) == scripts


def test_quickstart(capsys):
    out = _run("quickstart", capsys)
    assert "colo filter funnel" in out
    assert "relay type" in out


def test_colo_filter_pipeline(capsys):
    out = _run("colo_filter_pipeline", capsys)
    assert "verified relay pool" in out


def test_montecarlo_risk(capsys):
    out = _run("montecarlo_risk", capsys)
    assert "claim-hold probabilities" in out
    assert "world reuse" in out


def test_overlay_service(capsys):
    out = _run("overlay_service", capsys)
    assert "oracle-best relay" in out


def test_relay_placement_study(capsys):
    out = _run("relay_placement_study", capsys)
    assert "how many relays are enough?" in out


def test_temporal_stability(capsys):
    out = _run("temporal_stability", capsys)
    assert "recurring (measured in >=2 rounds) node pairs" in out


def test_voip_quality(capsys):
    out = _run("voip_quality", capsys)
    assert "RTT threshold for poor VoIP" in out
