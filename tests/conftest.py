"""Shared fixtures.

Building a world and running a campaign are the expensive operations, so
they are session-scoped: one small world (16 countries) shared by every
test that only reads from it, plus one short campaign result.  Tests that
mutate nothing may use these; tests that need special configurations build
their own (smaller) worlds.
"""

from __future__ import annotations

import pytest

from repro import CampaignConfig, MeasurementCampaign, build_world
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig

#: Seed used by every shared fixture; changing it invalidates calibration
#: expectations encoded in the integration tests.
TEST_SEED = 11


@pytest.fixture(scope="session")
def small_world():
    """A 16-country world: fast to build, globally diverse."""
    config = WorldConfig(topology=TopologyConfig(country_limit=16))
    return build_world(seed=TEST_SEED, config=config)


@pytest.fixture(scope="session")
def small_campaign_result(small_world):
    """A 3-round campaign over the small world."""
    campaign = MeasurementCampaign(small_world, CampaignConfig(num_rounds=3))
    return campaign.run()


@pytest.fixture(scope="session")
def full_world():
    """The full default world (every country); built once per session."""
    return build_world(seed=TEST_SEED)
