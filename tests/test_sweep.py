"""Tests for the multi-seed sweep runner and its CLI subcommand."""

import copy
import json

import pytest

from repro.cli import build_parser, main
from repro.core.sweep import SweepConfig, run_sweep
from repro.core.types import RELAY_TYPE_ORDER
from repro.errors import ConfigError


class TestSweepConfig:
    def test_rejects_empty_seeds(self):
        with pytest.raises(ConfigError):
            SweepConfig(seeds=())

    def test_rejects_duplicate_seeds(self):
        with pytest.raises(ConfigError):
            SweepConfig(seeds=(3, 3))

    def test_rejects_bad_rounds_and_workers(self):
        with pytest.raises(ConfigError):
            SweepConfig(seeds=(1,), rounds=0)
        with pytest.raises(ConfigError):
            SweepConfig(seeds=(1,), workers=0)


class TestRunSweep:
    @pytest.fixture(scope="class")
    def artifact(self):
        return run_sweep(SweepConfig(seeds=(3, 4), rounds=1, countries=8))

    def test_artifact_shape(self, artifact):
        assert artifact["config"]["seeds"] == [3, 4]
        assert artifact["config"]["rounds"] == 1
        assert [m["seed"] for m in artifact["per_seed"]] == [3, 4]
        for metrics in artifact["per_seed"]:
            assert metrics["total_cases"] > 0
            assert metrics["total_pings"] > 0
            for relay_type in RELAY_TYPE_ORDER:
                assert f"win_rate_{relay_type.value}" in metrics
                assert f"median_rtt_reduction_ms_{relay_type.value}" in metrics
        assert "timing" in artifact and artifact["timing"]["workers"] == 1

    def test_aggregate_bounds(self, artifact):
        aggregate = artifact["aggregate"]
        for relay_type in RELAY_TYPE_ORDER:
            entry = aggregate[f"win_rate_{relay_type.value}"]
            if entry is None:
                continue
            assert 0.0 <= entry["min"] <= entry["mean"] <= entry["max"] <= 1.0
        cases = aggregate["total_cases"]
        assert cases["min"] <= cases["mean"] <= cases["max"]

    def test_deterministic_across_worker_counts(self, artifact):
        parallel = run_sweep(
            SweepConfig(seeds=(3, 4), rounds=1, countries=8, workers=2)
        )
        a = copy.deepcopy(artifact)
        b = copy.deepcopy(parallel)
        a.pop("timing")
        b.pop("timing")
        assert a == b

    def test_aggregate_none_when_metric_missing_everywhere(self):
        artifact = run_sweep(
            SweepConfig(seeds=(3,), rounds=1, countries=8)
        )
        aggregate = artifact["aggregate"]
        for key, entry in aggregate.items():
            per_seed_values = [m[key] for m in artifact["per_seed"]]
            if all(v is None for v in per_seed_values):
                assert entry is None
            else:
                assert entry is not None


class TestSweepCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "--out", "x.json"])
        assert args.num_seeds == 4
        assert args.base_seed == 11
        assert args.rounds == 4
        assert args.workers == 1
        assert args.seeds is None

    def test_parser_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_parser_explicit_seed_list(self):
        args = build_parser().parse_args(
            ["sweep", "--seeds", "7", "8", "9", "--out", "x.json"]
        )
        assert args.seeds == [7, 8, 9]

    def test_end_to_end(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--seeds", "3", "4",
                "--rounds", "1",
                "--countries", "8",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "win_rate_COR" in printed
        assert str(out_file) in printed
        artifact = json.loads(out_file.read_text())
        assert artifact["config"]["seeds"] == [3, 4]
        assert len(artifact["per_seed"]) == 2

    def test_duplicate_seeds_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["sweep", "--seeds", "3", "3", "--rounds", "1",
             "--countries", "8", "--out", str(tmp_path / "x.json")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err
