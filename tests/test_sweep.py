"""Tests for the multi-seed sweep runner and its CLI subcommand."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.config import CampaignConfig
from repro.core.sweep import (
    SweepConfig,
    SweepEntry,
    SweepRequest,
    SweepResult,
    run_sweep,
)
from repro.core.table import ObservationTable
from repro.core.types import RELAY_TYPE_ORDER
from repro.errors import ConfigError, UnknownScenarioError
from repro.scenarios import get_scenario


class TestSweepConfig:
    def test_rejects_empty_seeds(self):
        with pytest.raises(ConfigError):
            SweepConfig(seeds=())

    def test_rejects_duplicate_seeds(self):
        with pytest.raises(ConfigError):
            SweepConfig(seeds=(3, 3))

    def test_rejects_bad_rounds_and_workers(self):
        with pytest.raises(ConfigError):
            SweepConfig(seeds=(1,), rounds=0)
        with pytest.raises(ConfigError):
            SweepConfig(seeds=(1,), workers=0)

    def test_rejects_bad_scenarios(self):
        with pytest.raises(ConfigError):
            SweepConfig(seeds=(1,), scenarios=())
        with pytest.raises(ConfigError):
            SweepConfig(seeds=(1,), scenarios=("baseline", "baseline"))
        with pytest.raises(ConfigError):
            SweepConfig(seeds=(1,), scenarios=("no-such-regime",))


class TestSweepRequest:
    def test_rejects_empty_entries(self):
        with pytest.raises(ConfigError):
            SweepRequest(entries=())

    def test_rejects_duplicate_labels(self):
        entry = SweepEntry(
            label="baseline", scenario=get_scenario("baseline"), seeds=(1,)
        )
        with pytest.raises(ConfigError):
            SweepRequest(entries=(entry, entry))

    def test_entry_rejects_empty_or_duplicate_seeds(self):
        scenario = get_scenario("baseline")
        with pytest.raises(ConfigError):
            SweepEntry(label="x", scenario=scenario, seeds=())
        with pytest.raises(ConfigError):
            SweepEntry(label="x", scenario=scenario, seeds=(3, 3))

    def test_from_scenario_rejects_unknown_names(self):
        with pytest.raises(UnknownScenarioError):
            SweepRequest.from_scenario("no-such-regime", seeds=(1,))

    def test_from_config_is_lossless(self):
        config = SweepConfig(
            seeds=(3, 4), rounds=2, countries=8,
            scenarios=("baseline", "lossy"), workers=2,
        )
        request = SweepRequest.from_config(config)
        assert [e.label for e in request.entries] == ["baseline", "lossy"]
        assert request.shared_seeds == (3, 4)
        assert request.rounds == 2
        assert request.workers == 2

    def test_from_configs_runs_without_registry(self):
        request = SweepRequest.from_configs(
            campaign=CampaignConfig(relay_mix=("COR", "PLR")),
            seeds=(3,), label="ad-hoc", rounds=1, countries=8,
            expect={"cases_observed": True, "rar_relays_observed": False},
        )
        result = run_sweep(request)
        assert result["config"]["scenarios"] == ["ad-hoc"]
        assert result.scenarios["ad-hoc"]["expectations"]["ok"] is True
        assert result.per_seed[0]["win_rate_RAR_OTHER"] == 0.0

    def test_shared_seeds_none_for_per_entry_lists(self):
        scenario = get_scenario("baseline")
        request = SweepRequest(
            entries=(
                SweepEntry(label="a", scenario=scenario, seeds=(1,)),
                SweepEntry(label="b", scenario=scenario, seeds=(2,)),
            ),
            rounds=1,
        )
        assert request.shared_seeds is None


class TestRunSweep:
    @pytest.fixture(scope="class")
    def artifact(self):
        return run_sweep(
            SweepRequest.from_scenario("baseline", seeds=(3, 4), rounds=1, countries=8)
        )

    def test_artifact_shape(self, artifact):
        assert artifact["config"]["seeds"] == [3, 4]
        assert artifact["config"]["rounds"] == 1
        assert artifact["config"]["scenarios"] == ["baseline"]
        assert [m["seed"] for m in artifact["per_seed"]] == [3, 4]
        for metrics in artifact["per_seed"]:
            assert metrics["scenario"] == "baseline"
            assert metrics["total_cases"] > 0
            assert metrics["total_pings"] > 0
            for relay_type in RELAY_TYPE_ORDER:
                assert f"win_rate_{relay_type.value}" in metrics
                assert f"median_rtt_reduction_ms_{relay_type.value}" in metrics
        assert "timing" in artifact and artifact["timing"]["workers"] == 1

    def test_scenario_sections(self, artifact):
        section = artifact["scenarios"]["baseline"]
        assert section["pooled"]["total_cases"] == sum(
            m["total_cases"] for m in artifact["per_seed"]
        )
        assert set(section["shapes"]) >= {"cases_observed", "cor_wins_majority"}
        assert isinstance(section["expectations"]["ok"], bool)
        assert isinstance(artifact["shapes_ok"], bool)
        assert artifact["comparison"]["total_cases"]["baseline"] == (
            section["pooled"]["total_cases"]
        )
        # single-scenario sweeps keep the legacy top-level aliases
        assert artifact["pooled"] == section["pooled"]
        assert artifact["aggregate"] == section["aggregate"]

    def test_aggregate_bounds(self, artifact):
        aggregate = artifact["aggregate"]
        for relay_type in RELAY_TYPE_ORDER:
            entry = aggregate[f"win_rate_{relay_type.value}"]
            if entry is None:
                continue
            assert 0.0 <= entry["min"] <= entry["mean"] <= entry["max"] <= 1.0
        cases = aggregate["total_cases"]
        assert cases["min"] <= cases["mean"] <= cases["max"]

    def test_deterministic_across_worker_counts(self, artifact):
        parallel = run_sweep(
            SweepRequest.from_scenario(
                "baseline", seeds=(3, 4), rounds=1, countries=8, workers=2
            )
        )
        assert artifact.as_dict(include_timing=False) == (
            parallel.as_dict(include_timing=False)
        )

    def test_result_is_typed_and_bridges_mapping_access(self, artifact):
        assert isinstance(artifact, SweepResult)
        assert artifact.shapes_ok == artifact["shapes_ok"]
        assert set(artifact.keys()) == set(artifact.as_dict())
        assert dict(artifact.items()) == artifact.as_dict()
        assert artifact.get("no-such-key") is None
        assert "workload" in artifact and "no-such-key" not in artifact
        table = artifact.tables["baseline"]
        assert isinstance(table, ObservationTable)
        assert table.num_cases == artifact.pooled["total_cases"]
        assert "tables" not in artifact.as_dict()

    def test_sweepconfig_shim_warns_and_matches_byte_for_byte(self, artifact):
        with pytest.warns(DeprecationWarning, match="SweepRequest"):
            legacy = run_sweep(SweepConfig(seeds=(3, 4), rounds=1, countries=8))
        assert json.dumps(legacy.as_dict(include_timing=False)) == (
            json.dumps(artifact.as_dict(include_timing=False))
        )

    def test_aggregate_none_when_metric_missing_everywhere(self):
        artifact = run_sweep(
            SweepRequest.from_scenario("baseline", seeds=(3,), rounds=1, countries=8)
        )
        aggregate = artifact["aggregate"]
        for key, entry in aggregate.items():
            per_seed_values = [m[key] for m in artifact["per_seed"]]
            if all(v is None for v in per_seed_values):
                assert entry is None
            else:
                assert entry is not None


class TestMultiScenarioSweep:
    @pytest.fixture(scope="class")
    def artifact(self):
        return run_sweep(
            SweepRequest.from_scenario(
                ("baseline", "no-probes"), seeds=(3,), rounds=1, countries=8
            )
        )

    def test_scenario_major_run_order(self, artifact):
        runs = [(m["scenario"], m["seed"]) for m in artifact["per_seed"]]
        assert runs == [("baseline", 3), ("no-probes", 3)]

    def test_per_scenario_sections(self, artifact):
        assert set(artifact["scenarios"]) == {"baseline", "no-probes"}
        # no legacy top-level aliases for multi-scenario artifacts
        assert "pooled" not in artifact
        assert "aggregate" not in artifact

    def test_relay_mix_shows_in_columns(self, artifact):
        no_probes = artifact["scenarios"]["no-probes"]
        assert no_probes["pooled"]["win_rate_RAR_OTHER"] == 0.0
        assert no_probes["pooled"]["win_rate_RAR_EYE"] == 0.0
        assert no_probes["shapes"]["rar_relays_observed"] is False
        assert artifact["scenarios"]["baseline"]["shapes"]["rar_relays_observed"]

    def test_comparison_pivots_metrics(self, artifact):
        row = artifact["comparison"]["win_rate_COR"]
        assert set(row) == {"baseline", "no-probes"}


class TestSweepCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "--out", "x.json"])
        assert args.num_seeds == 4
        assert args.seed == 11
        assert args.rounds is None  # resolved to 4 at run time
        assert args.workers == 1
        assert args.seeds is None
        assert args.scenario is None  # resolved to ("baseline",)

    def test_base_seed_is_deprecated_alias_of_seed(self, capsys):
        args = build_parser().parse_args(
            ["sweep", "--base-seed", "7", "--out", "x.json"]
        )
        assert args.seed == 7
        err = capsys.readouterr().err
        assert "deprecated" in err and "--seed" in err

    def test_parser_out_optional_scenarios_repeatable(self):
        args = build_parser().parse_args(
            ["sweep", "--scenario", "lossy", "spike-storm"]
        )
        assert args.out is None
        assert args.scenario == ["lossy", "spike-storm"]

    def test_parser_explicit_seed_list(self):
        args = build_parser().parse_args(
            ["sweep", "--seeds", "7", "8", "9", "--out", "x.json"]
        )
        assert args.seeds == [7, 8, 9]

    def test_end_to_end(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--seeds", "3", "4",
                "--rounds", "1",
                "--countries", "8",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "win_rate_COR" in printed
        assert str(out_file) in printed
        artifact = json.loads(out_file.read_text())
        assert artifact["config"]["seeds"] == [3, 4]
        assert len(artifact["per_seed"]) == 2

    def test_duplicate_seeds_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["sweep", "--seeds", "3", "3", "--rounds", "1",
             "--countries", "8", "--out", str(tmp_path / "x.json")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_scenario_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["sweep", "--seeds", "3", "--rounds", "1", "--countries", "8",
             "--scenario", "nope", "--out", str(tmp_path / "x.json")]
        )
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_stdout_artifact_byte_deterministic_across_workers(self, capsys):
        """The ISSUE's acceptance shape: same scenario sweep, different
        worker counts, byte-identical deterministic output."""
        outputs = []
        for workers in ("1", "2"):
            code = main(
                ["sweep", "--scenario", "lossy", "--seeds", "11", "12",
                 "--rounds", "1", "--countries", "8", "--workers", workers]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        artifact = json.loads(outputs[0])
        assert "timing" not in artifact
        assert artifact["config"]["scenarios"] == ["lossy"]


class TestScenariosCli:
    def test_list(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("baseline", "lossy", "spike-storm", "regional-eu",
                     "colo-sparse", "voip-heavy", "mega-world", "no-probes"):
            assert name in out

    def test_verify_ok(self, tmp_path, capsys):
        result = run_sweep(
            SweepRequest.from_scenario("baseline", seeds=(3,), rounds=1, countries=8)
        )
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(result.as_dict()))
        assert main(["scenarios", "--verify", str(path)]) == 0
        assert "baseline: ok" in capsys.readouterr().out.replace("  ", " ").strip()

    def test_verify_fails_on_unmet_expectations(self, tmp_path, capsys):
        artifact = {
            "scenarios": {
                "baseline": {
                    "expectations": {
                        "ok": False,
                        "failed": [
                            {"shape": "cor_wins_majority",
                             "expected": True, "observed": False}
                        ],
                    }
                }
            }
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(artifact))
        assert main(["scenarios", "--verify", str(path)]) == 1
        assert "cor_wins_majority" in capsys.readouterr().out

    def test_verify_rejects_artifact_without_scenarios(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text("{}")
        assert main(["scenarios", "--verify", str(path)]) == 2
        assert "no scenarios section" in capsys.readouterr().err
