"""Tests for the serving layer (:mod:`repro.service`).

The contract under test: directory compilation is deterministic (same
input, byte-identical snapshot), batched and scalar queries agree,
incremental ingestion is byte-identical to a full recompile, snapshots
round-trip exactly, and the load generator's query stream is invariant in
the worker count.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.oracle import RelayPredictor
from repro.core.results import PairObservation
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import ServiceError
from repro.service import (
    TIER_COUNTRY,
    TIER_DIRECT,
    TIER_NAMES,
    TIER_PAIR,
    LoadgenConfig,
    QueryStream,
    RelayDirectory,
    ShortcutService,
    replay,
)


@pytest.fixture(scope="module")
def service(small_campaign_result):
    return ShortcutService.from_result(small_campaign_result)


def _snapshot_bytes(svc: ShortcutService) -> bytes:
    buffer = io.BytesIO()
    svc.save(buffer)
    return buffer.getvalue()


def _unpack(key: int) -> tuple[int, int]:
    return int(key) >> 32, int(key) & 0xFFFFFFFF


class TestDirectoryCompile:
    def test_snapshot_deterministic(self, small_campaign_result):
        a = ShortcutService.from_result(small_campaign_result)
        b = ShortcutService.from_result(small_campaign_result)
        assert _snapshot_bytes(a) == _snapshot_bytes(b)
        assert a.directory.block_signature() == b.directory.block_signature()

    def test_from_table_equals_from_result(self, small_campaign_result, service):
        from_table = ShortcutService.from_table(small_campaign_result.table)
        assert (
            from_table.directory.block_signature()
            == service.directory.block_signature()
        )
        assert _snapshot_bytes(from_table) == _snapshot_bytes(service)

    def test_lanes_are_sorted_and_ranked(self, service):
        checked = 0
        for tier in (TIER_PAIR, TIER_COUNTRY):
            for relay_type in RELAY_TYPE_ORDER:
                block = service.directory.block(tier, relay_type)
                if block.num_lanes == 0:
                    continue
                checked += 1
                assert np.all(np.diff(block.keys) > 0), "lane keys not sorted"
                assert block.indptr[0] == 0
                assert block.indptr[-1] == block.relays.size
                lengths = np.diff(block.indptr)
                assert np.all(lengths > 0), "empty lane compiled"
                for lane in range(block.num_lanes):
                    lo, hi = int(block.indptr[lane]), int(block.indptr[lane + 1])
                    order = [
                        (-int(c), int(r))
                        for c, r in zip(block.counts[lo:hi], block.relays[lo:hi])
                    ]
                    assert order == sorted(order), "lane not (-count, relay) ranked"
        assert checked > 0

    def test_country_ranking_matches_loop_predictor(
        self, small_campaign_result, service
    ):
        """The country tier is the vectorised VIA predictor: same ranking
        as the loop RelayPredictor for every lane."""
        predictor = RelayPredictor(RelayType.COR)
        for obs in small_campaign_result.observations():
            predictor.observe(obs)
        directory = service.directory
        block = directory.block(TIER_COUNTRY, RelayType.COR)
        names = directory.countries()
        assert block.num_lanes > 0
        relays, _ = block.top_k(np.arange(block.num_lanes), 5)
        for lane in range(block.num_lanes):
            lo, hi = _unpack(block.keys[lane])
            probe = PairObservation(
                round_index=0, e1_id="x", e2_id="y",
                e1_cc=names[lo], e2_cc=names[hi],
                e1_city="c/x", e2_city="c/y", direct_rtt_ms=1.0,
                best_by_type={}, improving_by_type={}, feasible_by_type={},
            )
            expected = predictor.predict(probe, 5)
            assert [int(r) for r in relays[lane] if r >= 0] == expected

    def test_expected_reduction_is_mean_gain(self, small_campaign_result, service):
        """Reductions equal the mean observed improvement per (lane, relay)."""
        directory = service.directory
        block = directory.block(TIER_COUNTRY, RelayType.COR)
        observed: dict[tuple[str, str, int], list[float]] = {}
        for obs in small_campaign_result.observations():
            cc = tuple(sorted((obs.e1_cc, obs.e2_cc)))
            for relay, gain in obs.improving_by_type.get(RelayType.COR, ()):
                observed.setdefault((*cc, relay), []).append(gain)
        names = directory.countries()
        for lane in range(block.num_lanes):
            lo, hi = _unpack(block.keys[lane])
            cc = tuple(sorted((names[lo], names[hi])))
            for pos in range(int(block.indptr[lane]), int(block.indptr[lane + 1])):
                gains = observed[(*cc, int(block.relays[pos]))]
                assert len(gains) == int(block.counts[pos])
                assert block.reduction_ms[pos] == pytest.approx(
                    sum(gains) / len(gains), rel=1e-12
                )

    def test_stats_shape(self, service):
        stats = service.stats()
        assert stats["endpoints"] > 0
        assert stats["countries"] > 1
        assert stats["retained_rounds"] == [0, 1, 2]
        assert stats["lanes_pair_COR"] > 0


class TestQueries:
    def test_batched_matches_scalar(self, service):
        ids = service.directory.endpoint_ids()
        codes = service.encode_endpoints(ids)
        rng = np.random.default_rng(7)
        src = rng.choice(codes, 100)
        dst = rng.choice(codes, 100)
        for relay_type in RELAY_TYPE_ORDER:
            batch = service.route_many(src, dst, relay_type, k=3)
            for i in range(100):
                decision = service.route(
                    ids[src[i]], ids[dst[i]], relay_type, k=3
                )
                valid = batch.relay_ids[i] >= 0
                assert decision.relay_ids == tuple(
                    int(r) for r in batch.relay_ids[i][valid]
                )
                assert decision.reduction_ms == tuple(
                    float(g) for g in batch.reduction_ms[i][valid]
                )
                assert decision.tier == TIER_NAMES[int(batch.tier[i])]

    def test_exact_pair_tier(self, small_campaign_result, service):
        for obs in small_campaign_result.observations():
            if obs.improving_by_type.get(RelayType.COR):
                decision = service.route(obs.e1_id, obs.e2_id, RelayType.COR)
                assert decision.tier == "pair"
                assert decision.relay_id is not None
                assert decision.expected_reduction_ms > 0
                return
        pytest.skip("no COR-improved case in the fixture")

    def test_country_fallback_tier(self, small_campaign_result, service):
        """A pair never measured together falls back to its country lane."""
        directory = service.directory
        block = directory.block(TIER_PAIR, RelayType.COR)
        measured = set(int(k) for k in block.keys)
        ids = directory.endpoint_ids()
        codes = directory.encode_endpoints(ids)
        cc = directory.endpoint_country_codes()
        cc_block = directory.block(TIER_COUNTRY, RelayType.COR)
        cc_lanes = set(int(k) for k in cc_block.keys)
        for i in range(len(ids)):
            for j in range(len(ids)):
                a, b = int(codes[i]), int(codes[j])
                if a == b:
                    continue
                pair_key = (min(a, b) << 32) | max(a, b)
                cc_key = (
                    min(int(cc[a]), int(cc[b])) << 32
                ) | max(int(cc[a]), int(cc[b]))
                if pair_key not in measured and cc_key in cc_lanes:
                    decision = service.route(ids[i], ids[j], RelayType.COR)
                    assert decision.tier == "country"
                    assert decision.relay_id is not None
                    return
        pytest.skip("every endpoint pair has exact history in the fixture")

    def test_unknown_endpoint_is_direct(self, service):
        known = service.directory.endpoint_ids()[0]
        decision = service.route("no-such-probe", known, RelayType.COR)
        assert decision.tier == "direct"
        assert decision.relay_id is None
        assert decision.expected_reduction_ms is None

    def test_same_endpoint_is_direct(self, service):
        ep = service.directory.endpoint_ids()[0]
        assert service.route(ep, ep, RelayType.COR).tier == "direct"

    def test_large_k_pads(self, service):
        ids = service.directory.endpoint_ids()
        codes = service.encode_endpoints(ids[:4])
        batch = service.route_many(codes[:2], codes[2:], RelayType.COR, k=64)
        assert batch.relay_ids.shape == (2, 64)
        padding = batch.relay_ids == -1
        assert np.isnan(batch.reduction_ms[padding]).all()

    def test_k_validation(self, service):
        with pytest.raises(ServiceError):
            service.route_many(np.zeros(1, np.int64), np.ones(1, np.int64),
                               RelayType.COR, k=0)

    def test_shape_validation(self, service):
        with pytest.raises(ServiceError):
            service.route_many(np.zeros(2, np.int64), np.zeros(3, np.int64),
                               RelayType.COR, k=1)

    def test_route_batch_helpers(self, service):
        ids = service.directory.endpoint_ids()
        codes = service.encode_endpoints(ids)
        batch = service.route_many(
            codes[:-1], codes[1:], RelayType.COR, k=2
        )
        counts = batch.tier_counts()
        assert sum(counts.values()) == len(batch)
        assert 0.0 <= batch.relay_answer_fraction() <= 1.0
        assert batch.best_relay.shape == (len(batch),)


class TestIngest:
    def test_incremental_equals_full_recompile(self, small_campaign_result):
        svc = ShortcutService.empty(max_rounds=2)
        for rnd in small_campaign_result.rounds:
            svc.ingest_round(rnd)
        incremental = svc.directory.block_signature()
        incremental_bytes = _snapshot_bytes(svc)
        svc.directory.recompile()
        assert svc.directory.block_signature() == incremental
        assert _snapshot_bytes(svc) == incremental_bytes

    def test_window_answers_match_scratch_build(self, small_campaign_result):
        incremental = ShortcutService.empty(max_rounds=2)
        for rnd in small_campaign_result.rounds:
            incremental.ingest_round(rnd)
        scratch = ShortcutService.from_result(
            small_campaign_result,
            rounds=small_campaign_result.rounds[1:],
            max_rounds=2,
        )
        # compare over endpoints observed inside the window by both builds
        # (identity metadata persists across eviction by design; lanes decay)
        ids = sorted(
            e
            for e in set(incremental.directory.endpoint_ids())
            & set(scratch.directory.endpoint_ids())
            if scratch.directory.country_of_code(
                scratch.directory.endpoint_code(e)
            )
            is not None
        )
        ci = incremental.encode_endpoints(ids)
        cs = scratch.encode_endpoints(ids)
        rng = np.random.default_rng(3)
        ii = rng.integers(len(ids), size=400)
        jj = rng.integers(len(ids), size=400)
        for relay_type in RELAY_TYPE_ORDER:
            a = incremental.route_many(ci[ii], ci[jj], relay_type, 3)
            b = scratch.route_many(cs[ii], cs[jj], relay_type, 3)
            assert np.array_equal(a.relay_ids, b.relay_ids)
            assert np.array_equal(a.tier, b.tier)
            assert np.array_equal(a.reduction_ms, b.reduction_ms, equal_nan=True)

    def test_ttl_evicts_oldest(self, small_campaign_result):
        svc = ShortcutService.empty(max_rounds=2)
        for rnd in small_campaign_result.rounds:
            stats = svc.ingest_round(rnd)
        assert svc.directory.retained_rounds() == [1, 2]
        assert stats["evicted_rounds"] == 1

    def test_round_order_enforced(self, small_campaign_result):
        svc = ShortcutService.empty()
        svc.ingest_round(small_campaign_result.rounds[1])
        with pytest.raises(ServiceError):
            svc.ingest_round(small_campaign_result.rounds[0])
        with pytest.raises(ServiceError):
            svc.ingest_round(small_campaign_result.rounds[1])

    def test_multi_round_table_needs_round_id(self, small_campaign_result):
        directory = RelayDirectory()
        with pytest.raises(ServiceError):
            directory.ingest_round(small_campaign_result.table)
        directory.ingest_round(small_campaign_result.table, round_id=0)
        assert directory.retained_rounds() == [0]

    def test_constructor_validation(self):
        with pytest.raises(ServiceError):
            RelayDirectory(max_rounds=0)
        with pytest.raises(ServiceError):
            ShortcutService.empty(k=0)
        with pytest.raises(ServiceError):
            ShortcutService.empty(liveness_rounds=0)
        with pytest.raises(ServiceError):
            ShortcutService.empty(spill=-1)


class TestSnapshot:
    def test_roundtrip_identical(self, service):
        data = _snapshot_bytes(service)
        restored = ShortcutService.load(io.BytesIO(data))
        assert (
            restored.directory.block_signature()
            == service.directory.block_signature()
        )
        assert _snapshot_bytes(restored) == data

    def test_roundtrip_answers(self, service):
        restored = ShortcutService.load(io.BytesIO(_snapshot_bytes(service)))
        codes = service.encode_endpoints(service.directory.endpoint_ids())
        assert np.array_equal(
            codes, restored.encode_endpoints(restored.directory.endpoint_ids())
        )
        batch_a = service.route_many(codes[:-1], codes[1:], RelayType.COR, 3)
        batch_b = restored.route_many(codes[:-1], codes[1:], RelayType.COR, 3)
        assert np.array_equal(batch_a.relay_ids, batch_b.relay_ids)
        assert np.array_equal(
            batch_a.reduction_ms, batch_b.reduction_ms, equal_nan=True
        )
        assert np.array_equal(batch_a.tier, batch_b.tier)

    def test_roundtrip_keeps_ingesting(self, small_campaign_result):
        """A restored service continues incremental ingestion seamlessly."""
        svc = ShortcutService.from_result(
            small_campaign_result, rounds=small_campaign_result.rounds[:-1]
        )
        restored = ShortcutService.load(io.BytesIO(_snapshot_bytes(svc)))
        restored.ingest_round(small_campaign_result.rounds[-1])
        reference = ShortcutService.from_result(small_campaign_result)
        assert (
            restored.directory.block_signature()
            == reference.directory.block_signature()
        )

    def test_unknown_version_rejected(self, service):
        data = np.load(io.BytesIO(_snapshot_bytes(service)))
        arrays = {name: data[name] for name in data.files}
        arrays["meta"] = np.asarray([99, -1], np.int64)
        bad = io.BytesIO()
        np.savez(bad, **arrays)
        bad.seek(0)
        with pytest.raises(ServiceError):
            ShortcutService.load(bad)


class TestLoadgen:
    def test_stream_invariant_in_worker_count(self, service):
        base = LoadgenConfig(num_queries=10_000, seed=5)
        src1, dst1 = QueryStream(service.directory, base).generate()
        many = LoadgenConfig(num_queries=10_000, seed=5, workers=4)
        src4, dst4 = QueryStream(service.directory, many).generate()
        assert np.array_equal(src1, src4)
        assert np.array_equal(dst1, dst4)

    def test_replay_digest_invariant_in_worker_count(self, service):
        a = replay(service, LoadgenConfig(num_queries=6_000, workers=1))
        b = replay(service, LoadgenConfig(num_queries=6_000, workers=3))
        assert a["answers_digest"] == b["answers_digest"]
        assert a["tier_counts"] == b["tier_counts"]

    def test_replay_digest_depends_on_seed(self, service):
        a = replay(service, LoadgenConfig(num_queries=4_000, seed=1))
        b = replay(service, LoadgenConfig(num_queries=4_000, seed=2))
        assert a["answers_digest"] != b["answers_digest"]

    def test_zipf_skews_toward_populous_countries(self, service):
        directory = service.directory
        stream = QueryStream(
            directory, LoadgenConfig(num_queries=20_000, zipf_exponent=1.4)
        )
        src, dst = stream.generate()
        cc = directory.endpoint_country_codes()
        counts = np.bincount(
            np.concatenate([cc[src], cc[dst]]), minlength=len(directory.countries())
        )
        population = np.bincount(cc[cc >= 0], minlength=len(directory.countries()))
        active = np.flatnonzero(population > 0)
        head = active[np.argmax(population[active])]
        assert counts[head] >= counts[active].mean()

    def test_queries_target_known_endpoints(self, service):
        src, dst = QueryStream(
            service.directory, LoadgenConfig(num_queries=2_000)
        ).generate()
        n = len(service.directory.endpoint_ids())
        for arr in (src, dst):
            assert arr.min() >= 0
            assert arr.max() < n
        # countries differ, so endpoints always differ
        assert np.all(src != dst)

    def test_replay_stats_shape(self, service):
        stats = replay(service, LoadgenConfig(num_queries=3_000, batch_size=256))
        assert stats["queries"] == 3_000
        assert stats["batches"] == 12
        assert sum(stats["tier_counts"].values()) == 3_000
        assert 0.0 <= stats["relay_answer_frac"] <= 1.0
        assert stats["queries_per_s"] is None or stats["queries_per_s"] > 0

    def test_config_validation(self):
        for bad in (
            {"num_queries": 0},
            {"batch_size": 0},
            {"zipf_exponent": 0.0},
            {"k": 0},
            {"workers": 0},
        ):
            with pytest.raises(ServiceError):
                LoadgenConfig(**bad)

    def test_empty_directory_rejected(self):
        with pytest.raises(ServiceError):
            QueryStream(RelayDirectory(), LoadgenConfig(num_queries=10))


class TestTierConstants:
    def test_tier_order(self):
        assert TIER_NAMES[TIER_PAIR] == "pair"
        assert TIER_NAMES[TIER_COUNTRY] == "country"
        assert TIER_NAMES[TIER_DIRECT] == "direct"
