"""Tests for the topology generator (structure + determinism)."""

import pytest

from repro.errors import ConfigError
from repro.geo.cities import city as city_of
from repro.topology.builder import TopologyBuilder
from repro.topology.config import TopologyConfig
from repro.topology.types import ASType, COLO_TENANT_TYPES
from repro.util.rand import SeedSequenceFactory


@pytest.fixture(scope="module")
def topology():
    return TopologyBuilder(
        TopologyConfig(country_limit=16), SeedSequenceFactory(3)
    ).build()


class TestConfigValidation:
    def test_country_limit_floor(self):
        with pytest.raises(ConfigError):
            TopologyConfig(country_limit=2)

    def test_probability_range(self):
        with pytest.raises(ConfigError):
            TopologyConfig(eyeball_content_peering_prob=1.5)

    def test_tier1_floor(self):
        with pytest.raises(ConfigError):
            TopologyConfig(num_tier1=1)

    def test_duplicate_continent(self):
        with pytest.raises(ConfigError):
            TopologyConfig(regional_per_continent=(("EU", 2), ("EU", 3)))


class TestStructure:
    def test_all_roles_present(self, topology):
        for as_type in ASType:
            assert topology.asns_of_type(as_type), f"no AS of type {as_type}"

    def test_tier1_count(self, topology):
        assert len(topology.asns_of_type(ASType.TRANSIT_GLOBAL)) == 12

    def test_graph_validates(self, topology):
        topology.graph.validate()  # raises on violation

    def test_country_limit_respected(self, topology):
        eyeball_ccs = {
            topology.graph.get_as(a).cc for a in topology.asns_of_type(ASType.EYEBALL)
        }
        assert len(eyeball_ccs) <= 16

    def test_country_limit_spans_continents(self, topology):
        continents = {
            city_of(topology.graph.get_as(a).primary_city).continent
            for a in topology.asns_of_type(ASType.EYEBALL)
        }
        assert len(continents) >= 4

    def test_eyeballs_have_providers(self, topology):
        for asn in topology.asns_of_type(ASType.EYEBALL):
            assert topology.graph.providers_of(asn), f"eyeball AS{asn} has no transit"

    def test_tier1s_have_no_providers(self, topology):
        for asn in topology.asns_of_type(ASType.TRANSIT_GLOBAL):
            assert not topology.graph.providers_of(asn)

    def test_tier1_mesh_is_dense(self, topology):
        tier1s = topology.asns_of_type(ASType.TRANSIT_GLOBAL)
        peered = sum(
            1
            for i, a in enumerate(tier1s)
            for b in tier1s[i + 1 :]
            if topology.graph.are_adjacent(a, b)
        )
        possible = len(tier1s) * (len(tier1s) - 1) // 2
        assert peered / possible > 0.8

    def test_every_as_originates_prefixes(self, topology):
        for asys in topology.graph:
            assert asys.prefixes

    def test_prefixes_do_not_overlap(self, topology):
        prefixes = [p for asys in topology.graph for p in asys.prefixes]
        ordered = sorted(prefixes)
        for a, b in zip(ordered, ordered[1:]):
            assert not a.contains_prefix(b), f"{a} overlaps {b}"


class TestFacilities:
    def test_facilities_at_hubs_only(self, topology):
        for fac in topology.facilities.values():
            assert city_of(fac.city_key).is_hub

    def test_facility_members_have_local_pops(self, topology):
        for fac in topology.facilities.values():
            for asn in fac.members:
                assert topology.graph.get_as(asn).has_pop_in(fac.city_key)

    def test_large_facilities_exist(self, topology):
        largest = max(f.num_networks for f in topology.facilities.values())
        assert largest >= 30  # the paper's Table 1 metros host 100s of nets

    def test_facility_ixp_links_bidirectional(self, topology):
        for fac in topology.facilities.values():
            for ixp_id in fac.ixp_ids:
                assert fac.fac_id in topology.ixps[ixp_id].facility_ids
        for ixp in topology.ixps.values():
            for fac_id in ixp.facility_ids:
                assert ixp.ixp_id in topology.facilities[fac_id].ixp_ids

    def test_ixp_members_drawn_from_facilities(self, topology):
        for ixp in topology.ixps.values():
            pool = set()
            for fac_id in ixp.facility_ids:
                pool |= topology.facilities[fac_id].members
            assert ixp.members <= pool

    def test_colo_tenants_present(self, topology):
        tenant_members = {
            asn
            for fac in topology.facilities.values()
            for asn in fac.members
            if topology.graph.get_as(asn).as_type in COLO_TENANT_TYPES
        }
        assert len(tenant_members) >= 20

    def test_facilities_of_member_consistent(self, topology):
        some_fac = next(iter(topology.facilities.values()))
        member = next(iter(some_fac.members))
        assert some_fac.fac_id in {
            f.fac_id for f in topology.facilities_of_member(member)
        }


class TestDeterminism:
    def test_same_seed_same_world(self):
        cfg = TopologyConfig(country_limit=12)
        t1 = TopologyBuilder(cfg, SeedSequenceFactory(5)).build()
        t2 = TopologyBuilder(cfg, SeedSequenceFactory(5)).build()
        assert t1.summary() == t2.summary()
        assert t1.graph.asns() == t2.graph.asns()
        edges1 = [(e.a, e.b, e.rel, e.interconnect_cities) for e in t1.graph.edges()]
        edges2 = [(e.a, e.b, e.rel, e.interconnect_cities) for e in t2.graph.edges()]
        assert edges1 == edges2

    def test_different_seed_differs(self):
        cfg = TopologyConfig(country_limit=12)
        t1 = TopologyBuilder(cfg, SeedSequenceFactory(5)).build()
        t2 = TopologyBuilder(cfg, SeedSequenceFactory(6)).build()
        edges1 = [(e.a, e.b) for e in t1.graph.edges()]
        edges2 = [(e.a, e.b) for e in t2.graph.edges()]
        assert edges1 != edges2
