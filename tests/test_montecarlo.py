"""Tests for the Monte-Carlo scenario manager and its risk reductions.

The expensive end-to-end runs all share one class-scoped artifact pair
(1-worker and 2-worker runs of the frozen ``tiny-mc`` regime over one
world-snapshot cache); everything else is unit-level and cheap.
"""

import json
import math

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    SHAPE_KEYS,
    bootstrap_ci,
    hold_probability,
    risk_summary,
    summary_converged,
    top_relay_coverage,
    z_value,
)
from repro.cli import main
from repro.core.montecarlo import (
    DrawSpec,
    MonteCarloConfig,
    MonteCarloManager,
    ParamSpec,
    replace_field,
    run_montecarlo,
)
from repro.core.table import ObservationTable
from repro.errors import AnalysisError, ConfigError, UnknownScenarioError
from repro.scenarios import Regime, get_regime, list_regimes, regime_names
from repro.util.rand import derive_rng
from repro.world import WorldConfig


def _tiny_config(**overrides) -> MonteCarloConfig:
    defaults = dict(
        regime="tiny-mc",
        seed=7,
        batch_size=4,
        max_draws=8,
        confidence=0.9,
        target_half_width=0.35,
        rounds=1,
        countries=8,
        bootstrap_resamples=500,
    )
    defaults.update(overrides)
    return MonteCarloConfig(**defaults)


class TestParamSpec:
    def test_rejects_bad_targets_and_kinds(self):
        with pytest.raises(ConfigError):
            ParamSpec("latency.jitter_sigma", "uniform", 0.0, 1.0)  # no root
        with pytest.raises(ConfigError):
            ParamSpec("world", "uniform", 0.0, 1.0)  # root only
        with pytest.raises(ConfigError):
            ParamSpec("world.latency.jitter_sigma", "gaussian", 0.0, 1.0)

    def test_numeric_kinds_validate_bounds(self):
        with pytest.raises(ConfigError):
            ParamSpec("world.latency.jitter_sigma", "uniform", 1.0, 1.0)
        with pytest.raises(ConfigError):
            ParamSpec("world.latency.jitter_sigma", "uniform", high=1.0)
        with pytest.raises(ConfigError):
            ParamSpec("world.latency.queueing_scale_ms", "log_uniform", 0.0, 1.0)
        with pytest.raises(ConfigError):
            ParamSpec(
                "world.latency.queueing_scale_ms", "log_uniform", 0.1, 1.0,
                integer=True,
            )

    def test_choice_kind_validates_choices(self):
        with pytest.raises(ConfigError):
            ParamSpec("campaign.relay_mix", "choice")
        with pytest.raises(ConfigError):
            ParamSpec("campaign.relay_mix", "choice", 0.0, 1.0, choices=(1, 2))

    def test_sampling_respects_distribution(self):
        rng = derive_rng(0, "test.paramspec")
        uniform = ParamSpec("world.latency.jitter_sigma", "uniform", 0.1, 0.2)
        values = [uniform.sample(rng) for _ in range(200)]
        assert all(0.1 <= v < 0.2 for v in values)
        log_uniform = ParamSpec(
            "world.latency.queueing_scale_ms", "log_uniform", 0.01, 100.0
        )
        logs = [math.log(log_uniform.sample(rng)) for _ in range(200)]
        assert all(math.log(0.01) <= v <= math.log(100.0) for v in logs)
        # log-uniform spreads mass across decades: the log-midpoint splits
        # the samples roughly in half (a plain uniform would put ~99% above)
        below = sum(1 for v in logs if v < math.log(1.0))
        assert 60 <= below <= 140
        integer = ParamSpec("campaign.pings_per_pair", "uniform", 6, 9, integer=True)
        ints = {integer.sample(rng) for _ in range(100)}
        assert ints <= {6, 7, 8, 9} and len(ints) > 1
        choice = ParamSpec("campaign.relay_mix", "choice", choices=("a", "b"))
        assert {choice.sample(rng) for _ in range(50)} == {"a", "b"}

    def test_as_dict_round_trips_the_description(self):
        spec = ParamSpec("world.latency.jitter_sigma", "uniform", 0.1, 0.2)
        assert spec.as_dict() == {
            "target": "world.latency.jitter_sigma", "kind": "uniform",
            "low": 0.1, "high": 0.2,
        }
        choice = ParamSpec("campaign.relay_mix", "choice", choices=("a",))
        assert choice.as_dict()["choices"] == ["a"]


class TestReplaceField:
    def test_replaces_nested_field_without_mutating(self):
        config = WorldConfig()
        updated = replace_field(config, "latency.jitter_sigma", 0.09)
        assert updated.latency.jitter_sigma == 0.09
        assert config.latency.jitter_sigma != 0.09
        assert updated.topology == config.topology

    def test_unknown_field_and_bad_descent_fail_loudly(self):
        config = WorldConfig()
        with pytest.raises(ConfigError):
            replace_field(config, "latency.no_such_knob", 1.0)
        with pytest.raises(ConfigError):
            replace_field(config, "latency.jitter_sigma.deeper", 1.0)

    def test_validation_reruns_on_replace(self):
        with pytest.raises(ConfigError):
            replace_field(WorldConfig(), "latency.spike_prob", 2.0)


class TestRegimeRegistry:
    def test_presets_registered(self):
        assert {"baseline-mc", "lossy-mc", "tiny-mc"} <= set(regime_names())
        assert [r.name for r in list_regimes()] == list(regime_names())

    def test_unknown_regime_raises_registry_error(self):
        with pytest.raises(UnknownScenarioError, match="tiny-mc"):
            get_regime("no-such-regime")
        # subclasses ConfigError, so legacy call sites keep working
        with pytest.raises(ConfigError):
            get_regime("no-such-regime")

    def test_regime_validates_claims_and_targets(self):
        with pytest.raises(ConfigError, match="unknown shapes"):
            Regime(name="x-mc", description="d", claims={"not_a_shape": True})
        with pytest.raises(ConfigError, match="positive"):
            Regime(name="x-mc", description="d", metric_targets={"win_rate_COR": 0})
        with pytest.raises(UnknownScenarioError):
            Regime(name="x-mc", description="d", base="no-such-scenario")

    def test_claim_keys_are_draw_shape_keys(self):
        for regime in list_regimes():
            if regime.claims is not None:
                assert set(regime.claims) <= set(SHAPE_KEYS)


class TestIntervals:
    def test_z_value_matches_normal_quantiles(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_value(0.9) == pytest.approx(1.644854, abs=1e-5)
        with pytest.raises(AnalysisError):
            z_value(1.0)

    def test_wilson_interval_stays_in_unit_range(self):
        point, low, high = hold_probability(4, 4, 0.9)
        assert point == 1.0 and high == 1.0 and 0.0 < low < 1.0
        point, low, high = hold_probability(0, 4, 0.9)
        assert point == 0.0 and low == 0.0 and 0.0 < high < 1.0
        with pytest.raises(AnalysisError):
            hold_probability(5, 4)
        with pytest.raises(AnalysisError):
            hold_probability(0, 0)

    def test_wilson_narrows_with_draws(self):
        _, lo4, hi4 = hold_probability(4, 4, 0.9)
        _, lo64, hi64 = hold_probability(64, 64, 0.9)
        assert (hi64 - lo64) < (hi4 - lo4)

    def test_bootstrap_is_seeded_and_draw_count_keyed(self):
        values = [0.7, 0.75, 0.8, 0.72]
        a = bootstrap_ci(values, name="m", seed=7, resamples=200)
        b = bootstrap_ci(values, name="m", seed=7, resamples=200)
        assert a == b
        other_seed = bootstrap_ci(values, name="m", seed=8, resamples=200)
        assert a != other_seed
        mean, low, high = a
        assert low <= mean <= high
        assert mean == pytest.approx(np.mean(values))
        single = bootstrap_ci([0.5], name="m", seed=7)
        assert single == (0.5, 0.5, 0.5)
        with pytest.raises(AnalysisError):
            bootstrap_ci([], name="m", seed=7)

    def test_top_relay_coverage_empty_table_is_zero(self):
        assert top_relay_coverage(ObservationTable.empty()) == 0.0


class TestRiskSummary:
    def _records(self, shapes_list, metric=None):
        return [
            {
                "shapes": shapes,
                "metrics": {"win_rate_COR": metric[i] if metric else 0.7},
            }
            for i, shapes in enumerate(shapes_list)
        ]

    def test_counts_expected_value_matches(self):
        records = self._records(
            [{"cases_observed": True}] * 3 + [{"cases_observed": False}]
        )
        summary = risk_summary(
            records, claims={"cases_observed": True},
            metric_targets={}, confidence=0.9, seed=0,
        )
        row = summary["claims"]["cases_observed"]
        assert row["holds"] == 3 and row["draws"] == 4
        assert row["probability"] == 0.75
        # expecting False counts the complement
        inverted = risk_summary(
            records, claims={"cases_observed": False},
            metric_targets={}, confidence=0.9, seed=0,
        )
        assert inverted["claims"]["cases_observed"]["holds"] == 1

    def test_metric_with_too_few_values_blocks_convergence(self):
        records = self._records([{"cases_observed": True}], metric=[0.7])
        summary = risk_summary(
            records, claims={}, metric_targets={"win_rate_COR": 1.0},
            confidence=0.9, seed=0,
        )
        row = summary["metrics"]["win_rate_COR"]
        assert row["within_target"] is False and row["ci_low"] is None
        assert summary_converged(summary) is False
        assert summary_converged({}) is False

    def test_empty_records_rejected(self):
        with pytest.raises(AnalysisError):
            risk_summary([], claims={}, metric_targets={}, seed=0)


class TestMonteCarloConfig:
    def test_unknown_regime_fails_at_construction(self):
        with pytest.raises(UnknownScenarioError):
            _tiny_config(regime="no-such-regime")

    def test_knob_validation(self):
        for bad in (
            dict(batch_size=0), dict(max_draws=0), dict(confidence=1.0),
            dict(target_half_width=0.0), dict(rounds=0), dict(workers=0),
            dict(bootstrap_resamples=0),
            dict(metric_targets={"win_rate_COR": 0.0}),
        ):
            with pytest.raises(ConfigError):
                _tiny_config(**bad)


class TestDrawStream:
    def test_draws_depend_only_on_seed_and_index(self):
        a = MonteCarloManager(_tiny_config(batch_size=2, workers=1))
        b = MonteCarloManager(_tiny_config(batch_size=7, workers=3, max_draws=64))
        for index in (0, 1, 5):
            assert a.sample_draw(index) == b.sample_draw(index)
        assert a.sample_draw(0) != a.sample_draw(1)
        other = MonteCarloManager(_tiny_config(seed=8))
        assert other.sample_draw(0) != a.sample_draw(0)

    def test_draw_applies_params_to_scenario(self):
        manager = MonteCarloManager(_tiny_config())
        draw = manager.sample_draw(0)
        scenario = manager.draw_scenario(draw)
        values = dict(draw.values)
        assert scenario.campaign.pings_per_pair == (
            values["campaign.pings_per_pair"]
        )
        assert tuple(scenario.campaign.relay_mix) == (
            tuple(values["campaign.relay_mix"])
        )
        # the base preset is untouched
        assert manager.base.campaign.pings_per_pair == 6

    def test_draw_label_is_stable(self):
        assert DrawSpec(index=3, world_seed=1, values=()).label == "draw-0003"


class TestMonteCarloRun:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("world-cache"))

    @pytest.fixture(scope="class")
    def artifact(self, cache_dir):
        return run_montecarlo(_tiny_config(world_cache=cache_dir))

    @pytest.fixture(scope="class")
    def parallel_artifact(self, cache_dir):
        return run_montecarlo(_tiny_config(world_cache=cache_dir, workers=2))

    def test_artifact_shape(self, artifact):
        assert artifact["regime"] == "tiny-mc"
        assert artifact["base_scenario"] == "baseline"
        assert [spec["target"] for spec in artifact["params"]] == [
            "campaign.pings_per_pair", "campaign.relay_mix",
        ]
        assert set(artifact["claims"]) == {
            "cases_observed", "cor_wins_majority", "voip_no_worse_with_cor",
        }
        for record in artifact["draws"]:
            assert set(record) == {
                "draw", "world_seed", "params", "metrics", "shapes",
            }
            assert set(record["shapes"]) == set(SHAPE_KEYS)
            assert "top10_cor_coverage" in record["metrics"]
        assert artifact["world_cache"]["distinct_configs"] == 1
        assert artifact["world_cache"]["distinct_worlds"] <= 4  # seed_pool

    def test_converges_within_targets(self, artifact):
        convergence = artifact["convergence"]
        assert convergence["converged"] is True
        assert convergence["too_wide"] == []
        assert convergence["draws"] <= convergence["max_draws"]
        for row in artifact["risk"]["claims"].values():
            assert row["half_width"] <= artifact["risk"]["target_half_width"]
        for name, row in artifact["risk"]["metrics"].items():
            assert row["half_width"] <= row["target"], name

    def test_byte_identical_across_worker_counts(self, artifact, parallel_artifact):
        a = {k: v for k, v in artifact.items() if k != "timing"}
        b = {k: v for k, v in parallel_artifact.items() if k != "timing"}
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_draw_stream_independent_of_batch_size(self, cache_dir, artifact):
        # forced to the cap, a different batching consumes the same draws
        # and reports identical risk — only the input echo and the batch
        # count may differ
        cap = len(artifact["draws"])
        small = run_montecarlo(
            _tiny_config(
                world_cache=cache_dir, batch_size=1, max_draws=cap,
                target_half_width=0.001,  # unreachable: run to the cap
            )
        )
        assert json.dumps(small["draws"]) == json.dumps(artifact["draws"])
        # intervals are a function of the draws alone (the tightened
        # target only flips the within_target verdicts)
        for name, row in artifact["risk"]["claims"].items():
            other = small["risk"]["claims"][name]
            for key in ("probability", "ci_low", "ci_high", "half_width"):
                assert other[key] == row[key], (name, key)
        for name, row in artifact["risk"]["metrics"].items():
            other = small["risk"]["metrics"][name]
            for key in ("mean", "ci_low", "ci_high", "half_width"):
                assert other[key] == row[key], (name, key)

    def test_draw_cap_reports_unconverged(self, cache_dir):
        capped = run_montecarlo(
            _tiny_config(
                world_cache=cache_dir, batch_size=2, max_draws=2,
                target_half_width=0.001,
            )
        )
        convergence = capped["convergence"]
        assert convergence["converged"] is False
        assert convergence["draws"] == 2
        assert convergence["too_wide"]
        assert "cap" in convergence["reason"]


class TestMonteCarloCli:
    def test_list(self, capsys):
        assert main(["montecarlo", "--list"]) == 0
        out = capsys.readouterr().out
        for name in regime_names():
            assert name in out

    def test_unknown_regime_is_clean_error(self, capsys):
        code = main(["montecarlo", "--regime", "nope"])
        assert code == 1
        assert "unknown regime" in capsys.readouterr().err

    def test_end_to_end_writes_artifact(self, tmp_path, capsys):
        out_file = tmp_path / "mc.json"
        code = main(
            ["montecarlo", "--regime", "tiny-mc", "--seed", "7",
             "--countries", "8", "--rounds", "1", "--batch-size", "4",
             "--max-draws", "8", "--confidence", "0.9",
             "--target-half-width", "0.35", "--bootstrap-resamples", "200",
             "--world-cache", str(tmp_path / "cache"),
             "--require-converged", "--out", str(out_file)]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "montecarlo tiny-mc" in err and "holds" in err
        artifact = json.loads(out_file.read_text())
        assert artifact["convergence"]["converged"] is True
        assert "timing" in artifact

    def test_require_converged_exit_code(self, tmp_path, capsys):
        code = main(
            ["montecarlo", "--regime", "tiny-mc", "--seed", "7",
             "--countries", "8", "--rounds", "1", "--batch-size", "2",
             "--max-draws", "2", "--target-half-width", "0.001",
             "--bootstrap-resamples", "200",
             "--world-cache", str(tmp_path / "cache"),
             "--require-converged", "--out", str(tmp_path / "mc.json")]
        )
        assert code == 1
        assert "not converged" in capsys.readouterr().err
