"""Tests for the measurement campaign workflow and result containers."""

import pytest

from repro.core.campaign import MeasurementCampaign
from repro.core.config import CampaignConfig
from repro.core.results import RelayRegistry
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError, ConfigError


class TestCampaignConfigValidation:
    def test_defaults_valid(self):
        CampaignConfig()

    def test_min_valid_bounds(self):
        with pytest.raises(ConfigError):
            CampaignConfig(pings_per_pair=4, min_valid_rtts=5)

    def test_round_floor(self):
        with pytest.raises(ConfigError):
            CampaignConfig(num_rounds=0)

    def test_max_countries_floor(self):
        with pytest.raises(ConfigError):
            CampaignConfig(max_countries=1)


class TestRelayRegistry:
    def test_idempotent_registration(self):
        reg = RelayRegistry()
        a = reg.register("n1", RelayType.COR, 1, "GB", "London/GB", facility_id=3)
        b = reg.register("n1", RelayType.COR, 1, "GB", "London/GB", facility_id=3)
        assert a == b
        assert len(reg) == 1

    def test_type_conflict_rejected(self):
        reg = RelayRegistry()
        reg.register("n1", RelayType.COR, 1, "GB", "London/GB")
        with pytest.raises(AnalysisError):
            reg.register("n1", RelayType.PLR, 1, "GB", "London/GB")

    def test_lookup_roundtrip(self):
        reg = RelayRegistry()
        idx = reg.register("n1", RelayType.PLR, 1, "DE", "Berlin/DE", site_id="s1")
        record = reg.get(idx)
        assert record.node_id == "n1"
        assert record.site_id == "s1"
        assert reg.by_node_id("n1").index == idx

    def test_of_type(self):
        reg = RelayRegistry()
        reg.register("a", RelayType.COR, 1, "GB", "London/GB")
        reg.register("b", RelayType.PLR, 2, "DE", "Berlin/DE")
        assert [r.node_id for r in reg.of_type(RelayType.COR)] == ["a"]


class TestCampaignRun:
    def test_round_count(self, small_campaign_result):
        assert len(small_campaign_result.rounds) == 3

    def test_pairs_have_distinct_countries(self, small_campaign_result):
        for obs in small_campaign_result.observations():
            assert obs.e1_cc != obs.e2_cc

    def test_direct_rtts_positive(self, small_campaign_result):
        for obs in small_campaign_result.observations():
            assert obs.direct_rtt_ms > 0

    def test_best_is_min_of_improving(self, small_campaign_result):
        for obs in small_campaign_result.observations():
            for relay_type in RELAY_TYPE_ORDER:
                entries = obs.improving_by_type.get(relay_type, ())
                best = obs.best_by_type.get(relay_type)
                if entries:
                    assert best is not None
                    best_gain = max(gain for _, gain in entries)
                    assert obs.direct_rtt_ms - best[1] == pytest.approx(best_gain)

    def test_improving_entries_positive(self, small_campaign_result):
        for obs in small_campaign_result.observations():
            for relay_type in RELAY_TYPE_ORDER:
                for _, gain in obs.improving_by_type.get(relay_type, ()):
                    assert gain > 0

    def test_improving_relays_are_feasible_subset(self, small_campaign_result):
        for obs in small_campaign_result.observations():
            for relay_type in RELAY_TYPE_ORDER:
                assert obs.num_improving(relay_type) <= obs.feasible_by_type.get(
                    relay_type, 0
                )

    def test_registry_types_consistent(self, small_campaign_result):
        registry = small_campaign_result.registry
        for obs in small_campaign_result.observations():
            for relay_type in RELAY_TYPE_ORDER:
                for idx, _ in obs.improving_by_type.get(relay_type, ()):
                    assert registry.get(idx).relay_type is relay_type

    def test_endpoints_never_relay_for_themselves(self, small_campaign_result):
        registry = small_campaign_result.registry
        for rnd in small_campaign_result.rounds:
            endpoint_ids = set(rnd.endpoint_ids)
            for obs in rnd.observations:
                for relay_type in (RelayType.RAR_EYE, RelayType.RAR_OTHER):
                    for idx, _ in obs.improving_by_type.get(relay_type, ()):
                        assert registry.get(idx).node_id not in endpoint_ids

    def test_all_relay_types_used(self, small_campaign_result):
        registry = small_campaign_result.registry
        for relay_type in RELAY_TYPE_ORDER:
            assert registry.of_type(relay_type), f"no {relay_type} relays registered"

    def test_direct_medians_match_observations(self, small_campaign_result):
        for rnd in small_campaign_result.rounds:
            for obs in rnd.observations:
                key = (min(obs.e1_id, obs.e2_id), max(obs.e1_id, obs.e2_id))
                assert rnd.direct_medians[key] == obs.direct_rtt_ms

    def test_relay_medians_recorded(self, small_campaign_result):
        for rnd in small_campaign_result.rounds:
            assert rnd.relay_medians is not None
            assert rnd.relay_medians

    def test_pings_accounted(self, small_campaign_result):
        for rnd in small_campaign_result.rounds:
            assert rnd.pings_sent > 0
        assert small_campaign_result.total_pings == sum(
            r.pings_sent for r in small_campaign_result.rounds
        )

    def test_summary_keys(self, small_campaign_result):
        summary = small_campaign_result.summary()
        assert summary["rounds"] == 3
        for relay_type in RELAY_TYPE_ORDER:
            assert f"improved_frac_{relay_type.value}" in summary

    def test_timestamps_spaced_by_interval(self, small_campaign_result):
        hours = [r.timestamp_hours for r in small_campaign_result.rounds]
        assert hours == [0.0, 12.0, 24.0]


class TestCampaignDeterminism:
    def test_same_world_same_result(self, small_world):
        cfg = CampaignConfig(num_rounds=1, max_countries=6)
        a = MeasurementCampaign(small_world, cfg).run()
        b = MeasurementCampaign(small_world, cfg).run()
        assert a.total_cases == b.total_cases
        obs_a = [(o.e1_id, o.e2_id, o.direct_rtt_ms) for o in a.observations()]
        obs_b = [(o.e1_id, o.e2_id, o.direct_rtt_ms) for o in b.observations()]
        assert obs_a == obs_b

    def test_progress_callback(self, small_world):
        seen = []
        cfg = CampaignConfig(num_rounds=2, max_countries=5)
        MeasurementCampaign(small_world, cfg).run(
            progress=lambda i, rnd: seen.append((i, rnd.num_pairs()))
        )
        assert [i for i, _ in seen] == [0, 1]

    def test_no_relay_medians_when_disabled(self, small_world):
        cfg = CampaignConfig(num_rounds=1, max_countries=5, record_relay_medians=False)
        result = MeasurementCampaign(small_world, cfg).run()
        assert result.rounds[0].relay_medians is None


class TestSymmetryMeasurement:
    def test_bidirectional_pairs(self, small_world):
        campaign = MeasurementCampaign(
            small_world, CampaignConfig(num_rounds=1, max_countries=6)
        )
        pairs = campaign.measure_direction_symmetry()
        assert len(pairs) > 5
        for fwd, rev in pairs:
            assert fwd > 0 and rev > 0


class TestPairGridParity:
    """The grid-indexed measurement path must reproduce the per-leg
    pair-cache path bit for bit, column for column."""

    def test_campaign_output_bit_identical(self):
        import numpy as np

        from repro import build_world
        from repro.topology.config import TopologyConfig
        from repro.world import WorldConfig

        config = WorldConfig(topology=TopologyConfig(country_limit=8))
        tables = []
        pings = []
        for use_grid in (True, False):
            world = build_world(seed=5, config=config)
            campaign = MeasurementCampaign(
                world, CampaignConfig(num_rounds=2), use_pair_grid=use_grid
            )
            result = campaign.run()
            tables.append(result.table)
            pings.append(result.total_pings)
        grid_table, legacy_table = tables
        assert pings[0] == pings[1]
        for name in (
            "round_idx", "e1_id", "e2_id", "e1_cc", "e2_cc", "e1_city",
            "e2_city", "direct_rtt_ms", "best_relay", "best_stitched",
            "feasible", "country_flags", "imp_indptr", "imp_relay", "imp_gain",
        ):
            a = getattr(grid_table, name)
            b = getattr(legacy_table, name)
            assert np.array_equal(a, b, equal_nan=a.dtype.kind == "f"), name
