"""Tests for the terminal plot renderers."""

import pytest

from repro.analysis.plotting import render_cdf, render_funnel, render_lines
from repro.errors import AnalysisError


class TestRenderCdf:
    def test_basic_render(self):
        text = render_cdf({"A": [(1.0, 0.25), (2.0, 0.5), (4.0, 1.0)]})
        assert "o A" in text
        assert "o" in text.splitlines()[0] or any(
            "o" in line for line in text.splitlines()
        )

    def test_multiple_series_get_distinct_glyphs(self):
        text = render_cdf(
            {
                "first": [(1.0, 0.5), (2.0, 1.0)],
                "second": [(1.5, 0.5), (3.0, 1.0)],
            }
        )
        assert "o first" in text
        assert "x second" in text

    def test_axis_labels(self):
        text = render_cdf({"A": [(0.0, 0.5), (10.0, 1.0)]}, x_label="ms")
        assert "ms" in text
        assert "0.0" in text and "10.0" in text

    def test_empty_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            render_cdf({})
        with pytest.raises(AnalysisError):
            render_cdf({"A": []})

    def test_dimensions(self):
        text = render_cdf({"A": [(1.0, 1.0)]}, width=40, height=10)
        plot_lines = [l for l in text.splitlines() if "|" in l]
        assert len(plot_lines) == 10


class TestRenderLines:
    def test_basic_render(self):
        text = render_lines(
            {"cov": [(1, 10.0), (2, 20.0), (3, 25.0)]},
            x_label="N",
            y_label="% improved",
        )
        assert "% improved" in text
        assert "o cov" in text

    def test_flat_series_does_not_crash(self):
        text = render_lines({"flat": [(0, 5.0), (1, 5.0)]})
        assert "flat" in text

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            render_lines({})
        with pytest.raises(AnalysisError):
            render_lines({"A": []})


class TestRenderFunnel:
    def test_bars_shrink(self):
        text = render_funnel([("initial", 100), ("filter1", 50), ("filter2", 10)])
        lines = text.splitlines()
        assert lines[0].count("#") >= lines[1].count("#") >= lines[2].count("#")

    def test_counts_shown(self):
        text = render_funnel([("a", 42), ("b", 7)])
        assert "42" in text and "7" in text

    def test_zero_stage_renders_empty_bar(self):
        text = render_funnel([("a", 10), ("b", 0)])
        assert text.splitlines()[1].rstrip().endswith("|")

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            render_funnel([])
        with pytest.raises(AnalysisError):
            render_funnel([("a", 0)])
