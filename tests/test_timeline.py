"""Tests for the fault-timeline engine and churn-aware serving.

The load-bearing guarantee is byte-identity: a campaign run under an
empty (or out-of-horizon) schedule must produce exactly the same result
as a run with no timeline at all — same tables, same medians, same
compiled serving directory.  The rest of the suite covers event
validation, compile determinism, the per-event mechanics (outage windows,
probe churn, link degradation, traffic shifts), relay-health routing with
bounded spill, mid-churn snapshot round-trips, the loadgen's degenerate
workloads, and the typed service errors.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.campaign import MeasurementCampaign
from repro.core.config import CampaignConfig
from repro.core.types import RelayType
from repro.errors import (
    ConfigError,
    EmptyDirectoryError,
    ReproError,
    ServiceError,
    TimelineError,
    UnknownCountryError,
    UnknownEndpointError,
)
from repro.latency.model import PairGrid
from repro.service import (
    LoadgenConfig,
    QueryStream,
    RelayDirectory,
    ShortcutService,
    country_rank_order,
    replay,
)
from repro.timeline import (
    ChaosConfig,
    CompiledTimeline,
    LinkDegradation,
    ProbeChurn,
    RelayOutage,
    TimelineConfig,
    TrafficShift,
    chaos_replay,
    compile_timeline,
    rolling_outages,
)

ROUNDS = 3


def _run(world, timeline: TimelineConfig | None, **kwargs):
    campaign = MeasurementCampaign(
        world, CampaignConfig(num_rounds=ROUNDS, timeline=timeline, **kwargs)
    )
    return campaign, campaign.run()


@pytest.fixture(scope="module")
def outage_run(small_world):
    """A 3-round campaign with half the relay pools dark in round 1."""
    timeline = TimelineConfig(
        events=(RelayOutage(start_round=1, end_round=2, fraction=0.5),)
    )
    return _run(small_world, timeline)


# --------------------------------------------------------------- validation


class TestEventValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(TimelineError):
            RelayOutage(start_round=2, end_round=2, fraction=0.5)

    def test_negative_start_rejected(self):
        with pytest.raises(TimelineError):
            RelayOutage(start_round=-1, end_round=2, fraction=0.5)

    def test_fraction_bounds(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(TimelineError):
                RelayOutage(start_round=0, end_round=1, fraction=bad)

    def test_unknown_pool_rejected(self):
        with pytest.raises(TimelineError):
            RelayOutage(start_round=0, end_round=1, fraction=0.5, pools=("cloud",))

    def test_churn_mode_rejected(self):
        with pytest.raises(TimelineError):
            ProbeChurn(start_round=0, end_round=1, fraction=0.5, mode="sideways")

    def test_link_pair_must_be_distinct(self):
        with pytest.raises(TimelineError):
            LinkDegradation(start_round=0, end_round=1, countries=("DE", "DE"))

    def test_link_rtt_mult_floor(self):
        with pytest.raises(TimelineError):
            LinkDegradation(start_round=0, end_round=1, rtt_mult=0.5)

    def test_traffic_weight_floor(self):
        with pytest.raises(TimelineError):
            TrafficShift(start_round=0, end_round=1, weight_mult=-1.0)

    def test_rolling_outages_validation(self):
        with pytest.raises(TimelineError):
            rolling_outages(start_round=0, num_waves=0, fraction=0.5)
        waves = rolling_outages(start_round=1, num_waves=3, fraction=0.25)
        assert [w.start_round for w in waves] == [1, 2, 3]
        assert all(w.end_round == w.start_round + 1 for w in waves)

    def test_config_rejects_non_events(self):
        with pytest.raises(TimelineError):
            TimelineConfig(events=("outage",))

    def test_timeline_error_is_repro_error(self):
        assert issubclass(TimelineError, ReproError)

    def test_campaign_config_rejects_non_timeline(self):
        with pytest.raises(ConfigError):
            CampaignConfig(timeline="relay-outage")


# ------------------------------------------------------------------ compile


class TestCompile:
    def test_compile_is_deterministic(self, small_world):
        config = TimelineConfig(
            events=(
                RelayOutage(start_round=0, end_round=2, fraction=0.3),
                ProbeChurn(start_round=1, end_round=2, fraction=0.2),
                LinkDegradation(start_round=0, end_round=1, num_pairs=2),
                TrafficShift(start_round=0, end_round=3, weight_mult=2.0),
            )
        )
        a = compile_timeline(small_world, config, ROUNDS)
        b = compile_timeline(small_world, config, ROUNDS)
        for r in range(ROUNDS):
            assert a.absent_ids(r) == b.absent_ids(r)
            assert a.effects(r).links == b.effects(r).links
            assert a.effects(r).traffic == b.effects(r).traffic

    def test_window_is_half_open(self, small_world):
        config = TimelineConfig(
            events=(RelayOutage(start_round=1, end_round=2, fraction=0.5),)
        )
        timeline = compile_timeline(small_world, config, ROUNDS)
        assert not timeline.absent_ids(0)
        assert timeline.absent_ids(1)
        assert not timeline.absent_ids(2)

    def test_out_of_horizon_rounds_are_empty(self, small_world):
        config = TimelineConfig(
            events=(RelayOutage(start_round=0, end_round=3, fraction=0.5),)
        )
        timeline = compile_timeline(small_world, config, ROUNDS)
        assert not timeline.absent_ids(-1)
        assert not timeline.absent_ids(ROUNDS)
        assert not timeline.absent_ids(10_000)

    def test_cohort_fraction(self, small_world):
        pool = sorted(
            i.node.node_id for i in small_world.colo_pool.interfaces()
        )
        config = TimelineConfig(
            events=(
                RelayOutage(
                    start_round=0, end_round=1, fraction=0.5, pools=("colo",)
                ),
            )
        )
        timeline = compile_timeline(small_world, config, ROUNDS)
        cohort = timeline.absent_ids(0)
        assert len(cohort) == round(0.5 * len(pool))
        assert cohort <= set(pool)

    def test_rolling_waves_draw_fresh_cohorts(self, small_world):
        config = TimelineConfig(
            events=rolling_outages(start_round=0, num_waves=3, fraction=0.25)
        )
        timeline = compile_timeline(small_world, config, ROUNDS)
        cohorts = [timeline.absent_ids(r) for r in range(3)]
        assert all(cohorts)
        # independent draws per wave: the failing set shifts
        assert len(set(cohorts)) > 1

    def test_arrival_churn_absent_before_window(self, small_world):
        config = TimelineConfig(
            events=(
                ProbeChurn(
                    start_round=2, end_round=3, fraction=0.3, mode="arrival"
                ),
            )
        )
        timeline = compile_timeline(small_world, config, ROUNDS)
        assert timeline.absent_ids(0)
        assert timeline.absent_ids(0) == timeline.absent_ids(1)
        assert not timeline.absent_ids(2)

    def test_num_rounds_floor(self, small_world):
        with pytest.raises(TimelineError):
            compile_timeline(small_world, TimelineConfig(), 0)

    def test_has_events_reflects_horizon(self, small_world):
        fired = compile_timeline(
            small_world,
            TimelineConfig(
                events=(RelayOutage(start_round=0, end_round=1, fraction=0.5),)
            ),
            ROUNDS,
        )
        beyond = compile_timeline(
            small_world,
            TimelineConfig(
                events=(RelayOutage(start_round=50, end_round=51, fraction=0.5),)
            ),
            ROUNDS,
        )
        assert fired.has_events
        assert not beyond.has_events
        assert not compile_timeline(small_world, TimelineConfig(), ROUNDS).has_events

    def test_traffic_multipliers_resolve_rank_and_multiply(self, small_world):
        config = TimelineConfig(
            events=(
                TrafficShift(start_round=0, end_round=1, weight_mult=4.0, rank=0),
                TrafficShift(
                    start_round=0, end_round=1, weight_mult=0.5, country="ZZ"
                ),
            )
        )
        timeline = compile_timeline(small_world, config, ROUNDS)
        mult = timeline.traffic_multipliers(0, ["US", "DE"])
        assert mult == {"US": 4.0, "ZZ": 0.5}
        # rank past the end of the order resolves to nothing
        assert timeline.traffic_multipliers(0, []) == {"ZZ": 0.5}
        # multipliers hitting the same country compose multiplicatively
        stacked = TimelineConfig(
            events=(
                TrafficShift(start_round=0, end_round=1, weight_mult=4.0, rank=0),
                TrafficShift(start_round=0, end_round=1, weight_mult=0.5, rank=0),
            )
        )
        compiled = compile_timeline(small_world, stacked, ROUNDS)
        assert compiled.traffic_multipliers(0, ["US"]) == {"US": 2.0}


class TestLinkOverrides:
    def _timeline(self, windows_by_round):
        num_rounds = len(windows_by_round)
        return CompiledTimeline(
            TimelineConfig(),
            num_rounds,
            [frozenset() for _ in range(num_rounds)],
            windows_by_round,
            [() for _ in range(num_rounds)],
        )

    def test_matching_entries_degrade_both_directions(self, small_world):
        config = TimelineConfig(
            events=(
                LinkDegradation(
                    start_round=0,
                    end_round=1,
                    countries=("DE", "US"),
                    rtt_mult=2.0,
                    loss_add=0.5,
                ),
            )
        )
        timeline = compile_timeline(small_world, config, 1)
        grid = PairGrid(
            base=np.array([[10.0, 20.0], [30.0, 40.0]]),
            loss=np.array([[0.0, 0.2], [0.0, 0.0]]),
        )
        rows = np.array(["DE", "US"], dtype="U3")
        cols = np.array(["US", "DE"], dtype="U3")
        out = timeline.apply_link_overrides(grid, rows, cols, 0)
        assert out is not grid  # copy-on-write
        # (DE, US) and (US, DE) entries hit; (DE, DE) / (US, US) do not
        assert out.base[0, 0] == 20.0 and out.base[1, 1] == 80.0
        assert out.base[0, 1] == 20.0 and out.base[1, 0] == 30.0
        assert out.loss[0, 0] == pytest.approx(0.5)
        assert out.loss[1, 1] == pytest.approx(0.5)
        assert out.loss[0, 1] == pytest.approx(0.2)

    def test_no_match_returns_same_object(self, small_world):
        config = TimelineConfig(
            events=(
                LinkDegradation(
                    start_round=0, end_round=1, countries=("DE", "US")
                ),
            )
        )
        timeline = compile_timeline(small_world, config, 1)
        grid = PairGrid(base=np.ones((2, 2)), loss=np.zeros((2, 2)))
        ccs = np.array(["FR", "JP"], dtype="U3")
        assert timeline.apply_link_overrides(grid, ccs, ccs, 0) is grid
        # outside the window the grid is untouched too
        assert timeline.apply_link_overrides(grid, ccs, ccs, 5) is grid


# ----------------------------------------------------- zero-event identity


class TestZeroEventByteIdentity:
    """An event-free schedule must be invisible, byte for byte."""

    @pytest.fixture(scope="class")
    def static_result(self, small_campaign_result):
        return small_campaign_result

    @pytest.fixture(
        scope="class",
        params=["empty-schedule", "beyond-horizon"],
    )
    def silent_result(self, request, small_world):
        if request.param == "empty-schedule":
            timeline = TimelineConfig()
        else:
            # events exist but every window lies past the campaign horizon
            timeline = TimelineConfig(
                events=(
                    RelayOutage(start_round=50, end_round=60, fraction=0.9),
                    TrafficShift(start_round=50, end_round=60, weight_mult=9.0),
                )
            )
        return _run(small_world, timeline)[1]

    def test_tables_identical(self, static_result, silent_result):
        assert len(static_result.rounds) == len(silent_result.rounds)
        for a, b in zip(static_result.rounds, silent_result.rounds):
            assert a.table.columns_equal(b.table)
            assert a.endpoint_ids == b.endpoint_ids
            assert a.relay_indices_by_type == b.relay_indices_by_type
            assert a.pings_sent == b.pings_sent
            assert a.direct_medians == b.direct_medians
            assert a.relay_medians == b.relay_medians

    def test_registry_identical(self, static_result, silent_result):
        assert [r.node_id for r in static_result.registry] == [
            r.node_id for r in silent_result.registry
        ]

    def test_compiled_service_byte_identical(self, static_result, silent_result):
        static_sig = ShortcutService.from_result(
            static_result
        ).directory.block_signature()
        silent_sig = ShortcutService.from_result(
            silent_result
        ).directory.block_signature()
        assert static_sig == silent_sig


# ----------------------------------------------------------- fault effects


class TestFaultedCampaign:
    def test_pre_window_rounds_match_static_run(
        self, outage_run, small_campaign_result
    ):
        # round 0 precedes the outage window: the static code path runs on
        # the same RNG sequence, so it must be byte-identical
        _, faulted = outage_run
        assert faulted.rounds[0].table.columns_equal(
            small_campaign_result.rounds[0].table
        )
        assert (
            faulted.rounds[0].direct_medians
            == small_campaign_result.rounds[0].direct_medians
        )

    def test_dark_relays_sit_out_the_window(self, outage_run):
        campaign, faulted = outage_run
        cohort = campaign.timeline.absent_ids(1)
        assert cohort
        for round_index in range(ROUNDS):
            round_nodes = {
                faulted.registry.get(idx).node_id
                for indices in faulted.rounds[
                    round_index
                ].relay_indices_by_type.values()
                for idx in indices
            }
            if round_index == 1:
                assert not round_nodes & cohort
            # recovery: dark nodes are eligible again outside the window
        recovered = {
            faulted.registry.get(idx).node_id
            for indices in faulted.rounds[2].relay_indices_by_type.values()
            for idx in indices
        }
        assert recovered & cohort

    def test_probe_departure_shrinks_endpoints(self, small_world):
        timeline = TimelineConfig(
            events=(
                ProbeChurn(start_round=1, end_round=2, fraction=0.4),
            )
        )
        campaign, faulted = _run(small_world, timeline)
        cohort = campaign.timeline.absent_ids(1)
        sampled = set(faulted.rounds[1].endpoint_ids)
        assert not sampled & cohort
        # endpoints return once the window closes
        assert len(faulted.rounds[2].endpoint_ids) >= len(
            faulted.rounds[1].endpoint_ids
        )

    def test_link_degradation_bends_measurements(
        self, small_world, small_campaign_result
    ):
        covered = MeasurementCampaign(
            small_world, CampaignConfig(num_rounds=ROUNDS)
        ).eyeball_selector.covered_countries()
        a, b = sorted(covered)[:2]
        timeline = TimelineConfig(
            events=(
                LinkDegradation(
                    start_round=1,
                    end_round=2,
                    countries=(a, b),
                    rtt_mult=4.0,
                    loss_add=0.0,
                ),
            )
        )
        _, faulted = _run(small_world, timeline)
        static = small_campaign_result
        # rounds outside the window are untouched...
        assert faulted.rounds[0].table.columns_equal(static.rounds[0].table)
        assert faulted.rounds[2].table.columns_equal(static.rounds[2].table)
        # ...and inside it the degraded lane's medians move
        assert (
            faulted.rounds[1].direct_medians != static.rounds[1].direct_medians
        )

    def test_link_events_require_pair_grid(self, small_world):
        timeline = TimelineConfig(
            events=(
                LinkDegradation(start_round=0, end_round=1, num_pairs=1),
            )
        )
        with pytest.raises(ConfigError):
            MeasurementCampaign(
                small_world,
                CampaignConfig(num_rounds=ROUNDS, timeline=timeline),
                use_pair_grid=False,
            )


# ------------------------------------------------------- health & routing


class TestRelayHealth:
    def test_last_seen_covers_registry(self, small_campaign_result):
        directory = RelayDirectory.from_result(small_campaign_result)
        seen = directory.relay_last_seen()
        assert seen
        last_round = small_campaign_result.rounds[-1].round_index
        assert all(0 <= r <= last_round for r in seen.values())

    def test_stale_mask_window(self, small_campaign_result):
        directory = RelayDirectory.from_result(small_campaign_result)
        # a window covering every retained round marks nothing stale
        full = directory.stale_relay_mask(len(small_campaign_result.rounds))
        assert not full.any()
        # a one-round window marks exactly the relays absent from the
        # newest round's aggregate
        newest = max(directory.relay_last_seen().values())
        tight = directory.stale_relay_mask(1)
        stale_ids = {
            rid for rid, rnd in directory.relay_last_seen().items() if rnd < newest
        }
        assert {int(i) for i in np.nonzero(tight)[0]} == stale_ids

    def test_stale_mask_validation(self, small_campaign_result):
        directory = RelayDirectory.from_result(small_campaign_result)
        with pytest.raises(ServiceError):
            directory.stale_relay_mask(0)
        assert RelayDirectory().stale_relay_mask(1).shape == (0,)

    def test_health_off_matches_legacy_when_nothing_is_stale(
        self, small_campaign_result
    ):
        legacy = ShortcutService.from_result(small_campaign_result)
        guarded = ShortcutService.from_result(
            small_campaign_result,
            liveness_rounds=len(small_campaign_result.rounds),
        )
        assert guarded.dead_relay_count() == 0
        src, dst = QueryStream(
            legacy.directory, LoadgenConfig(num_queries=2048)
        ).generate()
        a = legacy.route_many(src, dst, RelayType.COR, 3)
        b = guarded.route_many(src, dst, RelayType.COR, 3)
        assert np.array_equal(a.relay_ids, b.relay_ids)
        assert np.array_equal(a.tier, b.tier)
        assert np.array_equal(a.reduction_ms, b.reduction_ms, equal_nan=True)

    def test_dead_relays_never_answer(self, outage_run):
        _, faulted = outage_run
        # retain only the outage round: everything absent from it is stale
        service = ShortcutService.from_result(
            faulted, rounds=faulted.rounds[:2], liveness_rounds=1
        )
        dead = service.directory.stale_relay_mask(1)
        assert dead.any()
        src, dst = QueryStream(
            service.directory, LoadgenConfig(num_queries=4096)
        ).generate()
        batch = service.route_many(src, dst, RelayType.COR, 3)
        answered = batch.relay_ids[batch.relay_ids >= 0]
        assert not dead[answered].any()
        counters = service.counters.as_dict()
        assert counters["queries"] == 4096
        assert counters["candidates_evicted"] > 0

    def test_service_validation(self, small_campaign_result):
        with pytest.raises(ServiceError):
            ShortcutService.from_result(small_campaign_result, liveness_rounds=0)
        with pytest.raises(ServiceError):
            ShortcutService.from_result(small_campaign_result, spill=-1)

    def test_stats_report_health(self, small_campaign_result):
        service = ShortcutService.from_result(
            small_campaign_result, liveness_rounds=1, spill=3
        )
        stats = service.stats()
        assert stats["liveness_rounds"] == 1
        assert stats["spill"] == 3
        assert stats["dead_relays"] == service.dead_relay_count()
        assert set(stats["degradation"]) == set(service.counters.as_dict())


class TestSnapshotMidChurn:
    def test_restore_and_continue_is_byte_identical(self, outage_run):
        _, faulted = outage_run
        live = ShortcutService.from_result(
            faulted, rounds=faulted.rounds[:2], liveness_rounds=1
        )
        buffer = io.BytesIO()
        live.save(buffer)
        buffer.seek(0)
        restored = ShortcutService.load(buffer, liveness_rounds=1)
        assert (
            restored.directory.relay_last_seen()
            == live.directory.relay_last_seen()
        )
        assert restored.dead_relay_count() == live.dead_relay_count()
        # continued ingestion after the restore tracks the live service
        for service in (live, restored):
            service.ingest_round(faulted.rounds[2])
        assert (
            restored.directory.block_signature()
            == live.directory.block_signature()
        )
        assert (
            restored.directory.relay_last_seen()
            == live.directory.relay_last_seen()
        )
        src, dst = QueryStream(
            live.directory, LoadgenConfig(num_queries=1024)
        ).generate()
        a = live.route_many(src, dst, RelayType.COR, 3)
        b = restored.route_many(src, dst, RelayType.COR, 3)
        assert np.array_equal(a.relay_ids, b.relay_ids)
        assert np.array_equal(a.tier, b.tier)


# ----------------------------------------------------------------- loadgen


class TestLoadgenDegenerateWorkloads:
    def test_zero_weights_silence_everything(self, small_campaign_result):
        directory = RelayDirectory.from_result(small_campaign_result)
        weights = {cc: 0.0 for cc in directory.countries()}
        stream = QueryStream(
            directory, LoadgenConfig(num_queries=512, country_weights=weights)
        )
        assert stream.is_empty
        assert stream.num_blocks == 0
        src, dst = stream.generate()
        assert src.shape == (0,) and dst.shape == (0,)
        assert src.dtype == np.int64

    def test_empty_replay_reports_none_rates(self, small_campaign_result):
        service = ShortcutService.from_result(small_campaign_result)
        weights = {cc: 0.0 for cc in service.directory.countries()}
        stats = replay(
            service, LoadgenConfig(num_queries=512, country_weights=weights)
        )
        assert stats["queries"] == 0
        assert stats["queries_per_s"] is None
        assert stats["relay_answer_frac"] is None

    def test_partial_silencing_excludes_country(self, small_campaign_result):
        directory = RelayDirectory.from_result(small_campaign_result)
        silenced = country_rank_order(directory)[0]
        stream = QueryStream(
            directory,
            LoadgenConfig(num_queries=2048, country_weights={silenced: 0.0}),
        )
        src, dst = stream.generate()
        assert len(src) == 2048
        banned = directory.country_code(silenced)
        ccs = directory.endpoint_country_codes()
        assert not (ccs[src] == banned).any()
        assert not (ccs[dst] == banned).any()

    def test_negative_weight_rejected(self):
        with pytest.raises(ServiceError):
            LoadgenConfig(country_weights={"US": -1.0})

    def test_unknown_weight_country_rejected(self, small_campaign_result):
        directory = RelayDirectory.from_result(small_campaign_result)
        with pytest.raises(UnknownCountryError):
            QueryStream(
                directory, LoadgenConfig(country_weights={"ZZ": 2.0})
            )

    def test_empty_directory_rejected(self):
        with pytest.raises(EmptyDirectoryError):
            QueryStream(RelayDirectory(), LoadgenConfig())
        with pytest.raises(EmptyDirectoryError):
            country_rank_order(RelayDirectory())


# ------------------------------------------------------------ typed errors


class TestTypedServiceErrors:
    def test_hierarchy(self):
        for exc in (EmptyDirectoryError, UnknownEndpointError, UnknownCountryError):
            assert issubclass(exc, ServiceError)

    def test_empty_directory_lookup(self):
        with pytest.raises(EmptyDirectoryError):
            RelayDirectory().lookup_many(
                np.zeros(1, np.int64), np.zeros(1, np.int64), RelayType.COR, 1
            )

    def test_out_of_range_codes(self, small_campaign_result):
        directory = RelayDirectory.from_result(small_campaign_result)
        known = len(directory.endpoint_ids())
        bad = np.array([known + 7], dtype=np.int64)
        good = np.zeros(1, dtype=np.int64)
        with pytest.raises(UnknownEndpointError):
            directory.lookup_many(bad, good, RelayType.COR, 1)
        with pytest.raises(UnknownEndpointError):
            directory.lookup_many(good, np.array([-2], np.int64), RelayType.COR, 1)
        with pytest.raises(UnknownEndpointError):
            directory.country_of_code(known + 7)

    def test_unseen_endpoint_code_stays_structural(self, small_campaign_result):
        # -1 is the loadgen's "unknown id" sentinel: a routable miss, not
        # an error — it must keep resolving to the direct tier
        service = ShortcutService.from_result(small_campaign_result)
        codes = service.encode_endpoints(["no-such-probe"])
        assert codes[0] == -1
        decision = service.route("no-such-probe", "also-missing", RelayType.COR)
        assert decision.tier == "direct"

    def test_unknown_country_name(self, small_campaign_result):
        directory = RelayDirectory.from_result(small_campaign_result)
        with pytest.raises(UnknownCountryError):
            directory.country_code("ZZ")


# ------------------------------------------------------------ chaos replay


class TestChaosReplay:
    def test_config_validation(self):
        for bad in (
            dict(max_rounds=0),
            dict(liveness_rounds=0),
            dict(spill=-1),
            dict(warmup_rounds=0),
            dict(queries_per_round=0),
        ):
            with pytest.raises(ServiceError):
                ChaosConfig(**bad)

    def test_replay_scores_against_timeline(self, outage_run):
        campaign, faulted = outage_run
        config = ChaosConfig(queries_per_round=512, max_rounds=2)
        report = chaos_replay(faulted, campaign.timeline, config)
        summary = report["summary"]
        assert summary["replayed_rounds"] == ROUNDS - config.warmup_rounds + 1
        assert summary["total_queries"] == 512 * summary["replayed_rounds"]
        assert 0.0 <= summary["min_availability"] <= 1.0
        assert summary["min_availability"] >= 0.99
        assert summary["degradation"]["queries"] == summary["total_queries"]

    def test_unguarded_baseline_serves_stale(self, outage_run):
        campaign, faulted = outage_run
        config = ChaosConfig(
            queries_per_round=512, max_rounds=None, liveness_rounds=None
        )
        report = chaos_replay(faulted, campaign.timeline, config)
        outage_round = next(
            r for r in report["rounds"] if r["round"] == 1
        )
        assert outage_round["dark_nodes"] > 0
        assert outage_round["stale_answer_rate"] > 0.0
        assert (
            report["summary"]["min_availability"]
            < 1.0
        )

    def test_replay_is_deterministic(self, outage_run):
        campaign, faulted = outage_run
        config = ChaosConfig(queries_per_round=256)

        def strip(report):
            for rnd in report["rounds"]:
                rnd.pop("queries_per_s")
            return report

        a = strip(chaos_replay(faulted, campaign.timeline, config))
        b = strip(chaos_replay(faulted, campaign.timeline, config))
        assert a == b

    def test_timeline_free_replay_is_fully_available(self, small_campaign_result):
        report = chaos_replay(
            small_campaign_result, None, ChaosConfig(queries_per_round=256)
        )
        assert report["summary"]["min_availability"] == 1.0
        assert report["summary"]["overall_stale_answer_rate"] == 0.0
