"""Tests for valley-free BGP routing.

Hand-built mini-topologies verify the export rules and preference order
directly; the generated world verifies global properties (reachability,
valley-freeness of every computed path).
"""

import pytest

from repro.errors import TopologyError
from repro.net.ipv4 import IPv4Prefix
from repro.routing.bgp import BGPRouting, Route, RouteClass
from repro.topology.graph import ASGraph, Relationship
from repro.topology.types import ASType, AutonomousSystem


def _mk_graph(n: int) -> ASGraph:
    g = ASGraph()
    for asn in range(1, n + 1):
        g.add_as(
            AutonomousSystem(
                asn=asn,
                name=f"AS{asn}",
                as_type=ASType.EYEBALL,
                cc="DE",
                pop_cities=("Frankfurt/DE",),
                prefixes=(IPv4Prefix.parse(f"10.{asn}.0.0/16"),),
            )
        )
    return g


CITY = ["Frankfurt/DE"]


class TestValleyFreeBasics:
    def test_self_path(self):
        g = _mk_graph(1)
        assert BGPRouting(g).path(1, 1) == [1]

    def test_customer_provider_chain(self):
        # 1 <- 2 <- 3 (2 customer of 3, 1 customer of 2)
        g = _mk_graph(3)
        g.add_c2p(1, 2, CITY)
        g.add_c2p(2, 3, CITY)
        routing = BGPRouting(g)
        assert routing.path(1, 3) == [1, 2, 3]  # uphill
        assert routing.path(3, 1) == [3, 2, 1]  # downhill

    def test_peer_valley_forbidden(self):
        # 1 and 2 are peers; 3 is customer of 1; 4 is customer of 2.
        # 3 -> 4 must go 3,1,2,4 (up, across one peer edge, down) — legal.
        g = _mk_graph(4)
        g.add_p2p(1, 2, CITY)
        g.add_c2p(3, 1, CITY)
        g.add_c2p(4, 2, CITY)
        routing = BGPRouting(g)
        assert routing.path(3, 4) == [3, 1, 2, 4]

    def test_two_peer_edges_forbidden(self):
        # 1 - 2 - 3 all peers in a line: path 1 -> 3 would need two peer
        # hops, which valley-free export forbids -> unreachable.
        g = _mk_graph(3)
        g.add_p2p(1, 2, CITY)
        g.add_p2p(2, 3, CITY)
        assert BGPRouting(g).path(1, 3) is None

    def test_no_transit_through_customerless_peer(self):
        # 4 customer of 1; 5 customer of 3; 1-2 and 2-3 peers.  4 -> 5 would
        # require 2 to export a peer-learned route to a peer: forbidden.
        g = _mk_graph(5)
        g.add_p2p(1, 2, CITY)
        g.add_p2p(2, 3, CITY)
        g.add_c2p(4, 1, CITY)
        g.add_c2p(5, 3, CITY)
        assert BGPRouting(g).path(4, 5) is None

    def test_customer_route_preferred_over_shorter_peer(self):
        # destination 5; AS 1 can reach 5 via customer chain 1<-2<-5
        # (customers: 2 of 1? careful) — build: 5 customer of 2, 2 customer
        # of 1 => 1 has customer route of length 2.  1 also peers with 4
        # which is 5's provider?  Make peer route length 2 as well:
        # 5 customer of 4, 4 peer of 1 -> peer route length 2.
        # With equal lengths, customer class must win.
        g = _mk_graph(5)
        g.add_c2p(2, 1, CITY)   # 2 customer of 1
        g.add_c2p(5, 2, CITY)   # 5 customer of 2
        g.add_c2p(5, 4, CITY)   # 5 customer of 4
        g.add_p2p(1, 4, CITY)   # 1 peers with 4
        routing = BGPRouting(g)
        table = routing.table_to(5)
        assert table[1].route_class is RouteClass.CUSTOMER
        assert routing.path(1, 5) == [1, 2, 5]

    def test_customer_preferred_even_if_longer(self):
        # customer route length 3 vs peer route length 2: customer wins
        g = _mk_graph(6)
        g.add_c2p(2, 1, CITY)
        g.add_c2p(3, 2, CITY)
        g.add_c2p(6, 3, CITY)  # customer chain 1<-2<-3<-6, length 3
        g.add_c2p(6, 5, CITY)
        g.add_p2p(1, 5, CITY)  # peer route 1-5-6, length 2
        routing = BGPRouting(g)
        assert routing.path(1, 6) == [1, 2, 3, 6]

    def test_shortest_within_class(self):
        # two provider routes, different lengths -> shorter wins
        g = _mk_graph(5)
        g.add_c2p(1, 2, CITY)
        g.add_c2p(1, 3, CITY)
        g.add_c2p(2, 4, CITY)
        g.add_c2p(4, 5, CITY)  # via 2: 1,2,4,5 length 3... make 5 reachable
        g.add_c2p(3, 5, CITY)  # via 3: 1,3,5 length 2
        routing = BGPRouting(g)
        assert routing.path(1, 5) == [1, 3, 5]

    def test_deterministic_tiebreak_lowest_next_hop(self):
        # two equal-length provider routes -> lowest next-hop ASN wins
        g = _mk_graph(4)
        g.add_c2p(1, 2, CITY)
        g.add_c2p(1, 3, CITY)
        g.add_c2p(2, 4, CITY)
        g.add_c2p(3, 4, CITY)
        routing = BGPRouting(g)
        assert routing.path(1, 4) == [1, 2, 4]

    def test_unknown_destination_raises(self):
        g = _mk_graph(2)
        g.add_c2p(1, 2, CITY)
        with pytest.raises(TopologyError):
            BGPRouting(g).table_to(99)

    def test_table_caching(self):
        g = _mk_graph(2)
        g.add_c2p(1, 2, CITY)
        routing = BGPRouting(g)
        routing.path(1, 2)
        routing.path(2, 1)
        assert routing.cached_destinations() == 2
        routing.path(1, 2)
        assert routing.cached_destinations() == 2

    def test_dead_end_route_is_unreachable_not_truncated(self):
        # regression: a table whose walk dead-ends (next_hop None before
        # reaching dst) must yield None, not a truncated path that silently
        # ends at the wrong AS
        g = _mk_graph(3)
        g.add_c2p(1, 2, CITY)
        g.add_c2p(2, 3, CITY)
        routing = BGPRouting(g)
        table = dict(routing.table_to(3))
        # doctor AS2's route to a dead end, as a corrupted or partially
        # built table would present it
        table[2] = Route(RouteClass.CUSTOMER, 1, None)
        routing._tables[3] = table
        assert routing._compute_path(1, 3) is None


def _is_valley_free(graph: ASGraph, path: list[int]) -> bool:
    """Check the classic uphill / one-peer / downhill shape."""
    phase = "up"
    for a, b in zip(path, path[1:]):
        adj = graph.adjacency(a, b)
        if adj.rel is Relationship.P2P:
            step = "peer"
        elif adj.rel is Relationship.C2P and adj.a == a:
            step = "up"  # a is customer of b
        else:
            step = "down"
        if phase == "up":
            if step in ("peer", "down"):
                phase = step if step == "peer" else "down"
        elif phase == "peer":
            if step != "down":
                return False
            phase = "down"
        else:  # down
            if step != "down":
                return False
    return True


class TestGeneratedWorldRouting:
    def test_paths_are_valley_free(self, small_world):
        graph = small_world.graph
        routing = small_world.routing
        asns = graph.asns()
        sources = asns[:40]
        destinations = asns[-10:]
        checked = 0
        for dst in destinations:
            for src in sources:
                path = routing.path(src, dst)
                if path is None or len(path) < 2:
                    continue
                assert _is_valley_free(graph, path), f"valley in {path}"
                checked += 1
        assert checked > 100

    def test_high_reachability(self, small_world):
        graph = small_world.graph
        routing = small_world.routing
        asns = graph.asns()
        dst = asns[0]  # a tier-1
        table = routing.table_to(dst)
        assert len(table) / len(asns) > 0.95

    def test_paths_consistent_with_tables(self, small_world):
        routing = small_world.routing
        asns = small_world.graph.asns()
        dst = asns[5]
        table = routing.table_to(dst)
        for src in asns[:30]:
            if src == dst or src not in table:
                continue
            path = routing.path(src, dst)
            assert path is not None
            assert len(path) - 1 == table[src].dist
