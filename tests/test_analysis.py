"""Tests for the analysis modules (Figs 2-4, Table 1, in-text results)."""

import pytest

from repro.analysis.countries import CountryChangeAnalysis
from repro.analysis.facilities import FacilityTable
from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.ranking import TopRelayAnalysis
from repro.analysis.stability import StabilityAnalysis
from repro.analysis.symmetry import SymmetryAnalysis
from repro.analysis.voip import VoipAnalysis
from repro.core.results import CampaignResult, RelayRegistry
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError


class TestImprovementAnalysis:
    def test_fractions_in_unit_interval(self, small_campaign_result):
        analysis = ImprovementAnalysis(small_campaign_result)
        for relay_type in RELAY_TYPE_ORDER:
            assert 0.0 <= analysis.improved_fraction(relay_type) <= 1.0

    def test_improvements_positive(self, small_campaign_result):
        analysis = ImprovementAnalysis(small_campaign_result)
        for relay_type in RELAY_TYPE_ORDER:
            assert all(v > 0 for v in analysis.improvements(relay_type))

    def test_fraction_matches_result_helper(self, small_campaign_result):
        analysis = ImprovementAnalysis(small_campaign_result)
        for relay_type in RELAY_TYPE_ORDER:
            assert analysis.improved_fraction(relay_type) == pytest.approx(
                small_campaign_result.improved_fraction(relay_type)
            )

    def test_cdf_monotone(self, small_campaign_result):
        analysis = ImprovementAnalysis(small_campaign_result)
        cdf = analysis.fig2_cdf(RelayType.COR)
        fs = [f for _, f in cdf]
        assert fs == sorted(fs)

    def test_fraction_above_decreasing_in_threshold(self, small_campaign_result):
        analysis = ImprovementAnalysis(small_campaign_result)
        a = analysis.fraction_above(RelayType.COR, 10.0)
        b = analysis.fraction_above(RelayType.COR, 50.0)
        assert a >= b

    def test_of_total_denominator(self, small_campaign_result):
        analysis = ImprovementAnalysis(small_campaign_result)
        of_improved = analysis.fraction_above(RelayType.COR, 10.0)
        of_total = analysis.fraction_above(RelayType.COR, 10.0, of_total=True)
        assert of_total <= of_improved

    def test_summary_complete(self, small_campaign_result):
        summary = ImprovementAnalysis(small_campaign_result).summary()
        for relay_type in RELAY_TYPE_ORDER:
            assert f"improved_frac_{relay_type.value}" in summary

    def test_empty_result_rejected(self):
        empty = CampaignResult(rounds=[], registry=RelayRegistry())
        with pytest.raises(AnalysisError):
            ImprovementAnalysis(empty)


class TestTopRelayAnalysis:
    def test_ranking_by_frequency(self, small_campaign_result):
        analysis = TopRelayAnalysis(small_campaign_result)
        freq = analysis.improvement_frequency(RelayType.COR)
        top = analysis.top_relays(RelayType.COR, 5)
        counts = [freq[idx] for idx in top]
        assert counts == sorted(counts, reverse=True)

    def test_fig3_curve_monotone(self, small_campaign_result):
        analysis = TopRelayAnalysis(small_campaign_result)
        curve = analysis.fig3_curve(RelayType.COR, max_n=30)
        values = [v for _, v in curve]
        assert values == sorted(values)
        assert values[-1] <= 100.0

    def test_fig3_converges_to_improved_fraction(self, small_campaign_result):
        analysis = TopRelayAnalysis(small_campaign_result)
        improvements = ImprovementAnalysis(small_campaign_result)
        n_all = analysis.num_ranked(RelayType.COR)
        coverage = analysis.coverage_of_top(RelayType.COR, n_all)
        assert coverage == pytest.approx(
            improvements.improved_fraction(RelayType.COR), abs=1e-9
        )

    def test_cor_concentration(self, small_campaign_result):
        """The paper's heavy-hitter result: a handful of COR relays covers
        most of COR's improved cases."""
        analysis = TopRelayAnalysis(small_campaign_result)
        improvements = ImprovementAnalysis(small_campaign_result)
        top10 = analysis.coverage_of_top(RelayType.COR, 10)
        all_frac = improvements.improved_fraction(RelayType.COR)
        assert top10 >= 0.5 * all_frac

    def test_fig4_top_subset_below_all(self, small_campaign_result):
        analysis = TopRelayAnalysis(small_campaign_result)
        thresholds = [0.0, 10.0, 20.0, 50.0]
        all_curve = analysis.fig4_curve(RelayType.COR, thresholds)
        top_curve = analysis.fig4_curve(RelayType.COR, thresholds, top_n=10)
        for (_, all_v), (_, top_v) in zip(all_curve, top_curve):
            assert top_v <= all_v + 1e-9

    def test_fig4_decreasing_in_threshold(self, small_campaign_result):
        analysis = TopRelayAnalysis(small_campaign_result)
        curve = analysis.fig4_curve(RelayType.COR, [0.0, 5.0, 20.0, 80.0])
        values = [v for _, v in curve]
        assert values == sorted(values, reverse=True)

    def test_facilities_of_top(self, small_campaign_result):
        analysis = TopRelayAnalysis(small_campaign_result)
        facilities = analysis.facilities_of_top(10)
        assert 1 <= len(facilities) <= 10

    def test_bad_top_n(self, small_campaign_result):
        with pytest.raises(AnalysisError):
            TopRelayAnalysis(small_campaign_result).coverage_of_top(RelayType.COR, 0)


class TestFacilityTable:
    def test_rows_shape(self, small_campaign_result, small_world):
        table = FacilityTable(small_campaign_result, small_world)
        rows = table.rows(top_relays=20)
        assert rows
        assert rows[0].rank == 1
        for row in rows:
            assert 0.0 <= row.pct_improved_cases <= 100.0
            assert row.num_networks > 0

    def test_features_match_peeringdb(self, small_campaign_result, small_world):
        table = FacilityTable(small_campaign_result, small_world)
        pdb = small_world.peeringdb
        for row in table.rows():
            assert row.num_networks == pdb.network_count(row.facility_id)
            assert row.num_ixps == pdb.ixp_count(row.facility_id)
            assert row.city_key == pdb.city_of(row.facility_id)

    def test_render_contains_rows(self, small_campaign_result, small_world):
        table = FacilityTable(small_campaign_result, small_world)
        text = table.render()
        assert "Facility" in text
        assert len(text.splitlines()) == len(table.rows()) + 1


class TestCountryChangeAnalysis:
    def test_split_totals_consistent(self, small_campaign_result):
        analysis = CountryChangeAnalysis(small_campaign_result)
        for relay_type in RELAY_TYPE_ORDER:
            split = analysis.split(relay_type)
            with_best = sum(
                1
                for obs in small_campaign_result.observations()
                if obs.best_by_type.get(relay_type) is not None
            )
            assert split.different_total + split.same_total == with_best

    def test_rates_in_unit_interval(self, small_campaign_result):
        analysis = CountryChangeAnalysis(small_campaign_result)
        split = analysis.split(RelayType.COR)
        if split.different_rate is not None:
            assert 0.0 <= split.different_rate <= 1.0
        if split.same_rate is not None:
            assert 0.0 <= split.same_rate <= 1.0

    def test_intercontinental_fraction(self, small_campaign_result):
        analysis = CountryChangeAnalysis(small_campaign_result)
        assert 0.0 < analysis.intercontinental_fraction() <= 1.0

    def test_summary_keys(self, small_campaign_result):
        summary = CountryChangeAnalysis(small_campaign_result).summary()
        assert "intercontinental_frac" in summary
        assert "diff_country_rate_COR" in summary


class TestVoipAnalysis:
    def test_relaying_never_hurts(self, small_campaign_result):
        voip = VoipAnalysis(small_campaign_result)
        assert voip.relayed_poor_fraction() <= voip.direct_poor_fraction()

    def test_threshold_validation(self, small_campaign_result):
        with pytest.raises(AnalysisError):
            VoipAnalysis(small_campaign_result, threshold_ms=0.0)

    def test_lower_threshold_more_poor(self, small_campaign_result):
        strict = VoipAnalysis(small_campaign_result, threshold_ms=100.0)
        lax = VoipAnalysis(small_campaign_result, threshold_ms=400.0)
        assert strict.direct_poor_fraction() >= lax.direct_poor_fraction()

    def test_summary(self, small_campaign_result):
        summary = VoipAnalysis(small_campaign_result).summary()
        assert summary["threshold_ms"] == 320.0


class TestStabilityAnalysis:
    def test_needs_two_rounds(self, small_campaign_result):
        single = CampaignResult(
            rounds=small_campaign_result.rounds[:1],
            registry=small_campaign_result.registry,
        )
        with pytest.raises(AnalysisError):
            StabilityAnalysis(single)

    def test_cvs_non_negative(self, small_campaign_result):
        analysis = StabilityAnalysis(small_campaign_result, min_occurrences=2)
        for cv in analysis.all_cvs():
            assert cv >= 0.0

    def test_per_round_fractions(self, small_campaign_result):
        analysis = StabilityAnalysis(small_campaign_result, min_occurrences=2)
        series = analysis.per_round_improved_fractions(RelayType.COR)
        assert len(series) == len(small_campaign_result.rounds)
        for _, frac in series:
            assert 0.0 <= frac <= 1.0

    def test_fraction_below_counts(self, small_campaign_result):
        analysis = StabilityAnalysis(small_campaign_result, min_occurrences=2)
        cvs = analysis.all_cvs()
        if cvs:
            frac = sum(1 for cv in cvs if cv < 0.10) / len(cvs)
            assert analysis.summary().get("frac_cv_below_10pct") == pytest.approx(
                round(frac, 4)
            )


class TestSymmetryAnalysis:
    def test_identical_directions(self):
        analysis = SymmetryAnalysis([(100.0, 100.0), (50.0, 50.0)])
        assert analysis.fraction_within(0.05) == 1.0
        assert analysis.mean_signed_difference() == 0.0

    def test_asymmetric_pairs_flagged(self):
        analysis = SymmetryAnalysis([(100.0, 120.0)])
        assert analysis.fraction_within(0.05) == 0.0
        assert analysis.fraction_within(0.25) == 1.0

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(AnalysisError):
            SymmetryAnalysis([])
        with pytest.raises(AnalysisError):
            SymmetryAnalysis([(0.0, 10.0)])

    def test_campaign_symmetry_matches_paper_shape(self, small_world):
        from repro.core.campaign import MeasurementCampaign
        from repro.core.config import CampaignConfig

        campaign = MeasurementCampaign(
            small_world, CampaignConfig(num_rounds=1, max_countries=10)
        )
        analysis = SymmetryAnalysis(campaign.measure_direction_symmetry())
        # the paper observed ~80% of pairs within 5%; accept a broad band
        assert analysis.fraction_within(0.05) > 0.5
