"""The redesigned service API surface.

Covers the contract the redesign promises: the deprecated bare
constructor is a byte-identical shim over the classmethods, the legacy
spellings forward exactly, answers and replay summaries are typed, the
CLI exposes one unified flag vocabulary across subcommands, and the
documented surface equals the exported one (the CI check runs as a
tier-1 test here too).
"""

from __future__ import annotations

import dataclasses
import io
import pathlib
import subprocess
import sys

import pytest

from repro.cli import build_parser
from repro.core.types import RelayType
from repro.errors import ServiceError
from repro.service import (
    TIER_NAMES,
    LoadgenConfig,
    RelayDirectory,
    RouteAnswer,
    RouteDecision,
    ServiceStats,
    ShortcutService,
    replay,
)

ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def service(small_campaign_result):
    return ShortcutService.from_campaign(small_campaign_result)


def _snapshot_bytes(svc: ShortcutService) -> bytes:
    buffer = io.BytesIO()
    svc.save(buffer)
    return buffer.getvalue()


class TestDeprecatedConstructor:
    def test_shim_warns_and_is_byte_identical(self, small_campaign_result):
        with pytest.warns(DeprecationWarning, match="from_campaign"):
            legacy = ShortcutService(max_rounds=2)
        modern = ShortcutService.empty(max_rounds=2)
        for rnd in small_campaign_result.rounds:
            legacy.ingest_round(rnd)
            modern.ingest_round(rnd)
        assert _snapshot_bytes(legacy) == _snapshot_bytes(modern)

    def test_shim_wraps_directory_like_from_directory(self, service):
        directory = service.directory
        with pytest.warns(DeprecationWarning):
            legacy = ShortcutService(directory)
        modern = ShortcutService.from_directory(directory)
        assert legacy.directory is modern.directory
        assert legacy.default_k == modern.default_k
        assert _snapshot_bytes(legacy) == _snapshot_bytes(modern)

    def test_shim_rejects_directory_plus_max_rounds(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ServiceError):
                ShortcutService(RelayDirectory(), max_rounds=2)

    def test_classmethods_do_not_warn(self, small_campaign_result, recwarn):
        ShortcutService.empty(max_rounds=2)
        ShortcutService.from_campaign(small_campaign_result)
        deprecations = [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
        assert not deprecations


class TestConstructorEquivalence:
    def test_from_result_forwards_to_from_campaign(
        self, small_campaign_result
    ):
        legacy = ShortcutService.from_result(
            small_campaign_result,
            max_rounds=2,
            rounds=small_campaign_result.rounds[1:],
        )
        modern = ShortcutService.from_campaign(
            small_campaign_result,
            max_rounds=2,
            rounds=small_campaign_result.rounds[1:],
        )
        assert _snapshot_bytes(legacy) == _snapshot_bytes(modern)

    def test_load_forwards_to_from_snapshot(self, service):
        data = _snapshot_bytes(service)
        legacy = ShortcutService.load(io.BytesIO(data))
        modern = ShortcutService.from_snapshot(io.BytesIO(data))
        assert _snapshot_bytes(legacy) == _snapshot_bytes(modern)

    def test_default_k_flows_into_answers(self, small_campaign_result):
        svc = ShortcutService.from_campaign(small_campaign_result, k=5)
        assert svc.default_k == 5
        codes = svc.encode_endpoints(
            sorted(svc.directory.endpoint_ids())[:4]
        )
        batch = svc.route_many(codes[:2], codes[2:])
        assert batch.relay_ids.shape == (2, 5)


class TestTypedResults:
    def test_route_returns_frozen_route_answer(self, service):
        ids = sorted(service.directory.endpoint_ids())[:2]
        answer = service.route(ids[0], ids[1])
        assert isinstance(answer, RouteAnswer)
        assert answer.src_id == ids[0] and answer.dst_id == ids[1]
        assert answer.relay_type is RelayType.COR
        assert isinstance(answer.relay_ids, tuple)
        assert isinstance(answer.reduction_ms, tuple)
        assert len(answer.relay_ids) == len(answer.reduction_ms)
        assert answer.tier in TIER_NAMES
        with pytest.raises(dataclasses.FrozenInstanceError):
            answer.tier = "direct"

    def test_route_decision_is_deprecated_alias(self):
        assert RouteDecision is RouteAnswer

    def test_replay_returns_typed_stats(self, service):
        config = LoadgenConfig(num_queries=2048, batch_size=512)
        stats = replay(service, config)
        assert isinstance(stats, ServiceStats)
        assert stats.queries == 2048
        assert stats.batch_size == 512
        assert stats.queries_per_s > 0
        assert sum(stats.tier_counts.values()) == stats.queries
        assert 0.0 <= stats.relay_answer_frac <= 1.0
        assert isinstance(stats.answers_digest, str)

    def test_stats_mapping_bridge_and_as_dict(self, service):
        config = LoadgenConfig(num_queries=1024, batch_size=512)
        stats = replay(service, config)
        # legacy dict-style consumers keep working through the bridge
        assert stats["queries"] == stats.queries
        assert stats["workers"] == stats.loadgen_workers
        as_dict = stats.as_dict()
        assert as_dict["queries"] == stats.queries
        assert as_dict["tier_counts"] == stats.tier_counts


class TestUnifiedCliFlags:
    #: flags every history-building subcommand must share, with the
    #: parse-time defaults (None resolves per-command at run time)
    SHARED = {"seed": 11, "countries": None, "scenario": None, "rounds": None}

    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign", "--out", "x.json"],
            ["sweep"],
            ["serve-bench"],
        ],
        ids=["campaign", "sweep", "serve-bench"],
    )
    def test_shared_flag_defaults_identical(self, argv):
        args = build_parser().parse_args(argv)
        for flag, default in self.SHARED.items():
            assert getattr(args, flag) == default, flag

    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign", "--out", "x.json"],
            ["sweep"],
            ["serve-bench"],
        ],
        ids=["campaign", "sweep", "serve-bench"],
    )
    def test_shared_flags_parse_identically(self, argv):
        args = build_parser().parse_args(
            argv + ["--seed", "23", "--rounds", "2", "--countries", "12",
                    "--scenario", "lossy"]
        )
        assert args.seed == 23
        assert args.rounds == 2
        assert args.countries == 12
        assert args.scenario == ["lossy"]

    def test_zipf_is_deprecated_alias(self, capsys):
        args = build_parser().parse_args(["serve-bench", "--zipf", "1.3"])
        assert args.zipf_exponent == 1.3
        err = capsys.readouterr().err
        assert "deprecated" in err and "--zipf-exponent" in err

    def test_alias_absence_keeps_new_default(self, capsys):
        args = build_parser().parse_args(["serve-bench"])
        assert args.zipf_exponent == 1.1
        assert "deprecated" not in capsys.readouterr().err


class TestApiSurfaceScript:
    def test_documented_surface_matches_exports(self):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "check_api_surface.py")],
            capture_output=True,
            text=True,
            cwd=ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        assert "api-surface: ok" in proc.stdout
