"""Tests for the world-snapshot cache (repro.core.worldcache).

The contract under test: a world restored from a snapshot is byte-for-byte
indistinguishable from a freshly built one (same campaign table payloads),
snapshots are deterministic at the byte level, any defective cache file is
a miss (never an error), and the cache key tracks every config field plus
the seed and the snapshot version.
"""

import dataclasses
import hashlib
import json
import os
import zipfile

import numpy as np
import pytest

import repro.core.worldcache as worldcache
from repro.core.campaign import MeasurementCampaign
from repro.core.config import CampaignConfig
from repro.core.worldcache import (
    WorldCache,
    capture_arrays,
    config_digest,
    resolve_cache,
    snapshot_key,
)
from repro.errors import RoutingError, WorldCacheError
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig, build_world

SEED = 3
CONFIG = WorldConfig(topology=TopologyConfig(country_limit=8))


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("world-cache")


@pytest.fixture(scope="module")
def warm_cache(cache_dir):
    """A cache holding the (CONFIG, SEED) snapshot, plus the builder world."""
    world = build_world(seed=SEED, config=CONFIG, world_cache=str(cache_dir))
    world.ensure_routing_fabric()
    return WorldCache(cache_dir), world


def _campaign_fingerprint(world) -> str:
    result = MeasurementCampaign(
        world, CampaignConfig(num_rounds=2, max_countries=5)
    ).run()
    digest = hashlib.blake2b()
    payload = result.table.to_payload()
    for key in sorted(payload):
        value = payload[key]
        digest.update(key.encode())
        digest.update(
            value.tobytes() if isinstance(value, np.ndarray) else repr(value).encode()
        )
    return digest.hexdigest()


class TestSnapshotBytes:
    def test_store_is_byte_deterministic(self, warm_cache, tmp_path):
        cache, world = warm_cache
        recorded = cache.path_for(SEED, CONFIG).read_bytes()
        again = WorldCache(tmp_path / "second").store(world)
        assert again.read_bytes() == recorded

    def test_capture_roundtrips_through_restore(self, warm_cache):
        """Restoring a snapshot and re-capturing yields identical arrays."""
        cache, _ = warm_cache
        restored = build_world(seed=SEED, config=CONFIG, world_cache=str(cache.root))
        restored.ensure_routing_fabric()
        fresh = build_world(seed=SEED, config=CONFIG)
        fresh.ensure_routing_fabric()
        first = capture_arrays(fresh)
        second = capture_arrays(restored)
        assert list(first) == list(second)
        for name in first:
            assert np.array_equal(first[name], second[name]), name

    def test_capture_before_fabric_raises(self):
        world = build_world(seed=SEED, config=CONFIG)
        with pytest.raises(WorldCacheError):
            capture_arrays(world)


class TestByteParity:
    def test_cached_campaign_matches_fresh(self, warm_cache):
        cache, _ = warm_cache
        fresh = build_world(seed=SEED, config=CONFIG, use_world_cache=False)
        restored = build_world(seed=SEED, config=CONFIG, world_cache=str(cache.root))
        assert _campaign_fingerprint(restored) == _campaign_fingerprint(fresh)

    def test_restored_world_summary_matches(self, warm_cache):
        cache, builder = warm_cache
        restored = build_world(seed=SEED, config=CONFIG, world_cache=str(cache.root))
        assert restored.summary() == builder.summary()
        assert (
            restored.peeringdb.closed_facility_ids()
            == builder.peeringdb.closed_facility_ids()
        )


class TestCacheKeying:
    def test_config_field_changes_key(self):
        other = WorldConfig(topology=TopologyConfig(country_limit=9))
        assert config_digest(other) != config_digest(CONFIG)
        assert snapshot_key(SEED, other) != snapshot_key(SEED, CONFIG)

    def test_every_top_level_section_is_keyed(self):
        # perturb one field per config section; each must change the digest
        base = config_digest(WorldConfig())
        variants = [
            WorldConfig(topology=TopologyConfig(country_limit=5)),
            dataclasses.replace(
                WorldConfig(),
                latency=dataclasses.replace(
                    WorldConfig().latency, per_hop_ms=WorldConfig().latency.per_hop_ms + 0.1
                ),
            ),
        ]
        digests = {config_digest(v) for v in variants}
        assert base not in digests
        assert len(digests) == len(variants)

    def test_seed_changes_key(self):
        assert snapshot_key(SEED, CONFIG) != snapshot_key(SEED + 1, CONFIG)

    def test_changed_config_misses(self, warm_cache):
        cache, _ = warm_cache
        other = WorldConfig(topology=TopologyConfig(country_limit=9))
        assert cache.load(SEED, other) is None

    def test_version_bump_misses(self, warm_cache, monkeypatch):
        cache, _ = warm_cache
        assert cache.load(SEED, CONFIG) is not None
        monkeypatch.setattr(worldcache, "SNAPSHOT_VERSION", 2)
        # key now names a v2 file that does not exist
        assert cache.load(SEED, CONFIG) is None
        # a v1 file renamed to the v2 key still misses on its meta version
        v2_path = cache.path_for(SEED, CONFIG)
        v2_path.write_bytes(
            (cache.root / f"{snapshot_key(SEED, CONFIG).replace('-v2', '-v1')}.npz")
            .read_bytes()
        )
        try:
            assert cache.load(SEED, CONFIG) is None
        finally:
            v2_path.unlink()


class TestDefectiveFiles:
    def test_corrupted_snapshot_rebuilds_cleanly(self, warm_cache, tmp_path):
        cache, _ = warm_cache
        broken_dir = tmp_path / "broken"
        broken_dir.mkdir()
        broken = WorldCache(broken_dir)
        path = broken.path_for(SEED, CONFIG)
        path.write_bytes(cache.path_for(SEED, CONFIG).read_bytes()[:4096])
        assert broken.load(SEED, CONFIG) is None
        # build_world treats the defect as a miss and rebuilds + overwrites
        world = build_world(seed=SEED, config=CONFIG, world_cache=str(broken_dir))
        world.ensure_routing_fabric()
        assert broken.load(SEED, CONFIG) is not None

    def test_garbage_file_is_a_miss(self, tmp_path):
        cache = WorldCache(tmp_path)
        cache.path_for(SEED, CONFIG).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(SEED, CONFIG).write_bytes(b"not a zip archive")
        assert cache.load(SEED, CONFIG) is None

    def test_compressed_members_are_a_miss(self, warm_cache, tmp_path):
        """A recompressed archive defeats mmap; load must miss, not crash."""
        cache, _ = warm_cache
        target = WorldCache(tmp_path / "compressed")
        target.root.mkdir()
        src = cache.path_for(SEED, CONFIG)
        dst = target.path_for(SEED, CONFIG)
        with zipfile.ZipFile(src) as zin, zipfile.ZipFile(
            dst, "w", compression=zipfile.ZIP_DEFLATED
        ) as zout:
            for info in zin.infolist():
                zout.writestr(info.filename, zin.read(info.filename))
        assert target.load(SEED, CONFIG) is None


class TestAtomicWrites:
    def test_store_leaves_no_temp_files(self, warm_cache, tmp_path):
        _, world = warm_cache
        cache = WorldCache(tmp_path / "atomic")
        cache.store(world)
        leftovers = [p for p in cache.root.iterdir() if p.suffix != ".npz"]
        assert leftovers == []

    def test_concurrent_writers_last_replace_wins(self, warm_cache, tmp_path):
        """Racing stores both go through tmp + os.replace; the final file is
        always one writer's complete snapshot, never interleaved bytes."""
        _, world = warm_cache
        cache = WorldCache(tmp_path / "race")
        first = cache.store(world).read_bytes()
        second = cache.store(world).read_bytes()
        assert first == second
        assert cache.load(SEED, CONFIG) is not None


class TestEnsureIdempotency:
    def test_second_ensure_recomputes_nothing(self):
        world = build_world(seed=SEED, config=CONFIG)
        world.ensure_routing_fabric()
        batches = len(world.fabric._batches)
        grid, _ = world.latency.attachment_grid()
        world._fabric_ready = False  # force a full re-entry, not the fast path
        world.ensure_routing_fabric()
        assert len(world.fabric._batches) == batches
        assert world.latency.attachment_grid()[0] is grid

    def test_fabric_ensure_subset_is_noop(self):
        world = build_world(seed=SEED, config=CONFIG)
        fabric = world.ensure_routing_fabric()
        batches = len(fabric._batches)
        covered = sorted(fabric._slot)
        fabric.ensure(covered[: len(covered) // 2])
        fabric.ensure(covered)
        assert len(fabric._batches) == batches

    def test_restored_world_ensure_recomputes_nothing(self, warm_cache):
        cache, _ = warm_cache
        world = build_world(seed=SEED, config=CONFIG, world_cache=str(cache.root))
        grid, _ = world.latency.attachment_grid()
        batches = len(world.fabric._batches)
        world.ensure_routing_fabric()
        assert len(world.fabric._batches) == batches
        assert world.latency.attachment_grid()[0] is grid

    def test_restore_into_nonempty_fabric_rejected(self, warm_cache):
        cache, _ = warm_cache
        snapshot = cache.load(SEED, CONFIG)
        world = build_world(seed=SEED, config=CONFIG)
        world.ensure_routing_fabric()
        with pytest.raises(RoutingError):
            snapshot.attach_routing(world)


class TestResolution:
    def test_explicit_path_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(worldcache.CACHE_ENV_VAR, str(tmp_path / "env"))
        cache = resolve_cache(str(tmp_path / "explicit"))
        assert cache.root == tmp_path / "explicit"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(worldcache.CACHE_ENV_VAR, str(tmp_path / "env"))
        assert resolve_cache().root == tmp_path / "env"

    def test_no_cache_by_default(self, monkeypatch):
        monkeypatch.delenv(worldcache.CACHE_ENV_VAR, raising=False)
        assert resolve_cache() is None

    def test_use_world_cache_false_ignores_env(self, warm_cache, monkeypatch):
        cache, _ = warm_cache
        monkeypatch.setenv(worldcache.CACHE_ENV_VAR, str(cache.root))
        world = build_world(seed=SEED, config=CONFIG, use_world_cache=False)
        # a restored world arrives with its grid installed; a reference
        # build must not (it has not run ensure_routing_fabric yet)
        assert world.latency.attachment_grid() is None

    def test_env_cache_restores(self, warm_cache, monkeypatch):
        cache, _ = warm_cache
        monkeypatch.setenv(worldcache.CACHE_ENV_VAR, str(cache.root))
        world = build_world(seed=SEED, config=CONFIG)
        assert world.latency.attachment_grid() is not None


class TestSnapshotMeta:
    def test_meta_identifies_the_snapshot(self, warm_cache):
        cache, _ = warm_cache
        with np.load(cache.path_for(SEED, CONFIG)) as archive:
            meta = json.loads(str(archive["meta"][0]))
        assert meta["seed"] == SEED
        assert meta["snapshot_version"] == worldcache.SNAPSHOT_VERSION
        assert meta["config_digest"] == config_digest(CONFIG)

    def test_snapshot_members_are_uncompressed(self, warm_cache):
        cache, _ = warm_cache
        with zipfile.ZipFile(cache.path_for(SEED, CONFIG)) as archive:
            assert all(
                info.compress_type == zipfile.ZIP_STORED
                for info in archive.infolist()
            )

    def test_miss_arms_capture_on_first_ensure(self, tmp_path):
        cache_root = tmp_path / "armed"
        world = build_world(seed=SEED, config=CONFIG, world_cache=str(cache_root))
        assert not os.path.exists(cache_root)  # nothing stored yet
        world.ensure_routing_fabric()
        assert WorldCache(cache_root).load(SEED, CONFIG) is not None
