"""Table-vs-object equivalence suite for the columnar observation pipeline.

The analyses were rewritten from PairObservation walks to NumPy column
reductions; this module keeps *frozen copies* of the original object-path
implementations and asserts, on a real same-seed campaign, that the
columnar numbers are identical — plus structural round-trips
(table -> objects -> table, save/load, pickle payload) and ragged-CSR edge
cases (zero improving / zero feasible relays).
"""

import json
import pickle

import numpy as np
import pytest

from repro.analysis.countries import CountryChangeAnalysis
from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.ranking import TopRelayAnalysis
from repro.analysis.stability import StabilityAnalysis
from repro.analysis.voip import VoipAnalysis
from repro.core.results import PairObservation
from repro.core.sweep import SweepRequest, run_seed_campaign, run_sweep
from repro.core.table import NUM_RELAY_TYPES, ObservationTable, TablePools
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.util.stats import median


# --------------------------------------------------------------------------
# frozen object-path reference implementations (pre-columnar analysis code)


def _ref_best_improvements(observations, relay_type):
    values = []
    for obs in observations:
        entries = obs.improving_by_type.get(relay_type, ())
        if entries:
            values.append(max(gain for _, gain in entries))
    return values


def _ref_improvement_summary(observations):
    total = len(observations)
    info = {}
    for relay_type in RELAY_TYPE_ORDER:
        values = _ref_best_improvements(observations, relay_type)
        name = relay_type.value
        info[f"improved_frac_{name}"] = round(len(values) / total, 4)
        med = median(values) if values else None
        info[f"median_improvement_ms_{name}"] = round(med, 2) if med is not None else None
        count = sum(1 for v in values if v > 100.0)
        info[f"frac_gt100ms_of_improved_{name}"] = round(count / max(1, len(values)), 4)
        counts = [
            len(obs.improving_by_type.get(relay_type, ()))
            for obs in observations
            if obs.improving_by_type.get(relay_type, ())
        ]
        info[f"median_num_improving_{name}"] = (
            median([float(c) for c in counts]) if counts else None
        )
    return info


def _ref_country_split(observations, registry, relay_type):
    diff_total = diff_improved = same_total = same_improved = 0
    for obs in observations:
        entry = obs.best_by_type.get(relay_type)
        if entry is None:
            continue
        idx, stitched = entry
        relay_cc = registry.get(idx).cc
        improved = stitched < obs.direct_rtt_ms
        if relay_cc != obs.e1_cc and relay_cc != obs.e2_cc:
            diff_total += 1
            diff_improved += int(improved)
        else:
            same_total += 1
            same_improved += int(improved)
    return (diff_total, diff_improved, same_total, same_improved)


def _ref_group_rates(observations, relay_type):
    diff_total = diff_improved = same_total = same_improved = 0
    for obs in observations:
        flags = obs.country_groups_by_type.get(relay_type)
        if flags is None:
            continue
        usable_same, improving_same, usable_diff, improving_diff = flags
        if usable_same:
            same_total += 1
            same_improved += int(improving_same)
        if usable_diff:
            diff_total += 1
            diff_improved += int(improving_diff)
    return (diff_total, diff_improved, same_total, same_improved)


def _ref_frequency(observations, relay_type):
    freq = {}
    for obs in observations:
        for idx, _ in obs.improving_by_type.get(relay_type, ()):
            freq[idx] = freq.get(idx, 0) + 1
    return freq


def _ref_fig3(observations, relay_type, max_n):
    freq = _ref_frequency(observations, relay_type)
    ranked = sorted(freq, key=lambda i: (-freq[i], i))
    rank_of = {idx: rank for rank, idx in enumerate(ranked, start=1)}
    total = len(observations)
    best_ranks = []
    for obs in observations:
        entries = obs.improving_by_type.get(relay_type, ())
        if entries:
            best_ranks.append(min(rank_of[idx] for idx, _ in entries))
    return [
        (n, 100.0 * sum(1 for rank in best_ranks if rank <= n) / total)
        for n in range(1, max_n + 1)
    ]


def _ref_fig4(observations, relay_type, thresholds, allowed):
    total = len(observations)
    best_gains = []
    for obs in observations:
        entries = obs.improving_by_type.get(relay_type, ())
        gains = [g for idx, g in entries if allowed is None or idx in allowed]
        if gains:
            best_gains.append(max(gains))
    return [
        (t, 100.0 * sum(1 for g in best_gains if g > t) / total)
        for t in thresholds
    ]


def _ref_voip(observations, threshold, relay_type):
    total = len(observations)
    direct_poor = sum(1 for o in observations if o.direct_rtt_ms > threshold)
    relayed_poor = 0
    for obs in observations:
        effective = obs.direct_rtt_ms
        stitched = obs.best_stitched(relay_type)
        if stitched is not None and stitched < effective:
            effective = stitched
        if effective > threshold:
            relayed_poor += 1
    return direct_poor / total, relayed_poor / total


# --------------------------------------------------------------------------
# equivalence on a real campaign


@pytest.fixture(scope="module")
def campaign(small_campaign_result):
    observations = list(small_campaign_result.observations())
    return small_campaign_result, observations


class TestObjectPathEquivalence:
    def test_improvement_summary(self, campaign):
        result, observations = campaign
        assert ImprovementAnalysis(result).summary() == _ref_improvement_summary(
            observations
        )

    def test_best_improvement_lists(self, campaign):
        from repro.util.stats import cdf_points

        result, observations = campaign
        analysis = ImprovementAnalysis(result)
        for relay_type in RELAY_TYPE_ORDER:
            values = _ref_best_improvements(observations, relay_type)
            assert analysis.improvements(relay_type) == values
            clipped = [v for v in values if 1.0 <= v <= 200.0]
            expected = cdf_points(clipped) if clipped else []
            assert analysis.fig2_cdf(relay_type) == expected

    def test_improved_fraction_matches_object_walk(self, campaign):
        result, observations = campaign
        for relay_type in RELAY_TYPE_ORDER:
            improved = sum(1 for o in observations if o.improved(relay_type))
            assert result.improved_fraction(relay_type) == improved / len(observations)

    def test_country_split_and_groups(self, campaign):
        result, observations = campaign
        analysis = CountryChangeAnalysis(result)
        for relay_type in RELAY_TYPE_ORDER:
            split = analysis.split(relay_type)
            assert (
                split.different_total,
                split.different_improved,
                split.same_total,
                split.same_improved,
            ) == _ref_country_split(observations, result.registry, relay_type)
            rates = analysis.group_rates(relay_type)
            assert (
                rates.different_total,
                rates.different_improved,
                rates.same_total,
                rates.same_improved,
            ) == _ref_group_rates(observations, relay_type)

    def test_intercontinental_fraction(self, campaign):
        result, observations = campaign
        inter = sum(1 for o in observations if o.is_intercontinental)
        assert CountryChangeAnalysis(result).intercontinental_fraction() == (
            inter / len(observations)
        )

    def test_ranking_frequency_and_curves(self, campaign):
        result, observations = campaign
        ranking = TopRelayAnalysis(result)
        for relay_type in RELAY_TYPE_ORDER:
            assert ranking.improvement_frequency(relay_type) == _ref_frequency(
                observations, relay_type
            )
            assert ranking.fig3_curve(relay_type, max_n=25) == _ref_fig3(
                observations, relay_type, 25
            )
            thresholds = [0.0, 5.0, 20.0, 100.0]
            assert ranking.fig4_curve(relay_type, thresholds) == _ref_fig4(
                observations, relay_type, thresholds, None
            )
            allowed = set(ranking.top_relays(relay_type, 5))
            assert ranking.fig4_curve(relay_type, thresholds, top_n=5) == _ref_fig4(
                observations, relay_type, thresholds, allowed
            )

    def test_voip_fractions(self, campaign):
        result, observations = campaign
        voip = VoipAnalysis(result)
        direct_ref, relayed_ref = _ref_voip(observations, 320.0, RelayType.COR)
        assert voip.direct_poor_fraction() == direct_ref
        assert voip.relayed_poor_fraction(RelayType.COR) == relayed_ref

    def test_stability_per_round_fractions(self, campaign):
        result, _ = campaign
        stability = StabilityAnalysis(result, min_occurrences=2)
        for relay_type in RELAY_TYPE_ORDER:
            expected = []
            for rnd in result.rounds:
                obs = rnd.observations
                if not obs:
                    continue
                improved = sum(1 for o in obs if o.improved(relay_type))
                expected.append((rnd.round_index, improved / len(obs)))
            assert stability.per_round_improved_fractions(relay_type) == expected


# --------------------------------------------------------------------------
# structural round-trips


class TestRoundTrips:
    def test_objects_to_table_and_back(self, campaign):
        result, observations = campaign
        rebuilt = ObservationTable.from_observations(observations)
        assert result.table.columns_equal(rebuilt)
        assert rebuilt.materialized() == observations

    def test_round_tables_share_pools_with_campaign_table(self, campaign):
        result, _ = campaign
        for rnd in result.rounds:
            assert rnd.table.pools is result.table.pools

    def test_payload_pickle_round_trip(self, campaign):
        result, observations = campaign
        payload = pickle.loads(pickle.dumps(result.table.to_payload()))
        restored = ObservationTable.from_payload(payload)
        assert result.table.columns_equal(restored)
        assert restored.materialized() == observations

    def test_save_load_round_trip(self, campaign, tmp_path):
        from repro.core.io import load_result, save_result

        result, observations = campaign
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert list(loaded.observations()) == observations
        assert loaded.table.columns_equal(result.table)
        assert ImprovementAnalysis(loaded).summary() == ImprovementAnalysis(
            result
        ).summary()

    def test_concat_with_distinct_pools_decodes_identically(self, campaign):
        result, observations = campaign
        # one table per round, each with its own pools: the remap path
        per_round = [
            ObservationTable.from_observations(rnd.observations)
            for rnd in result.rounds
        ]
        merged = ObservationTable.concat(per_round)
        assert merged.columns_equal(result.table)


# --------------------------------------------------------------------------
# sweep transport


class TestSweepTransport:
    def test_artifact_byte_identical_across_runs_and_workers(self):
        config = dict(seeds=(3, 4), rounds=1, countries=8)
        a = run_sweep(SweepRequest.from_scenario("baseline", **config))
        b = run_sweep(SweepRequest.from_scenario("baseline", **config, workers=2))
        assert json.dumps(a.as_dict(include_timing=False), sort_keys=True) == (
            json.dumps(b.as_dict(include_timing=False), sort_keys=True)
        )

    def test_per_seed_metrics_match_object_path(self):
        outcome = run_seed_campaign(3, rounds=1, countries=8)
        metrics = outcome["metrics"]
        # recompute the paper-shape metrics through the frozen object walk
        from repro.core.campaign import MeasurementCampaign
        from repro.core.config import CampaignConfig
        from repro.topology.config import TopologyConfig
        from repro.world import WorldConfig, build_world

        world = build_world(
            seed=3, config=WorldConfig(topology=TopologyConfig(country_limit=8))
        )
        result = MeasurementCampaign(world, CampaignConfig(num_rounds=1)).run()
        observations = list(result.observations())
        assert metrics["total_cases"] == len(observations)
        for relay_type in RELAY_TYPE_ORDER:
            values = _ref_best_improvements(observations, relay_type)
            name = relay_type.value
            assert metrics[f"win_rate_{name}"] == round(
                len(values) / len(observations), 4
            )
            expected = round(median(values), 3) if values else None
            assert metrics[f"median_rtt_reduction_ms_{name}"] == expected

    def test_pooled_section_counts_all_cases(self):
        artifact = run_sweep(
            SweepRequest.from_scenario("baseline", seeds=(3, 4), rounds=1, countries=8)
        )
        assert artifact["pooled"]["total_cases"] == sum(
            m["total_cases"] for m in artifact["per_seed"]
        )


# --------------------------------------------------------------------------
# ragged-CSR edge cases


def _obs(round_index, pair_no, *, improving=None, best=None, feasible=None,
         groups=None, direct=120.0):
    improving = improving or {}
    feasible = feasible or {}
    groups = groups or {}
    full_improving = {t: tuple(improving.get(t, ())) for t in RELAY_TYPE_ORDER}
    full_feasible = {t: feasible.get(t, 0) for t in RELAY_TYPE_ORDER}
    full_groups = {
        t: tuple(groups.get(t, (False, False, False, False)))
        for t in RELAY_TYPE_ORDER
    }
    return PairObservation(
        round_index=round_index,
        e1_id=f"p{pair_no}a",
        e2_id=f"p{pair_no}b",
        e1_cc="DE",
        e2_cc="JP",
        e1_city="Berlin/DE",
        e2_city="Tokyo/JP",
        direct_rtt_ms=direct,
        best_by_type=best or {},
        improving_by_type=full_improving,
        feasible_by_type=full_feasible,
        country_groups_by_type=full_groups,
    )


class TestCsrEdgeCases:
    def test_zero_improving_and_zero_feasible(self):
        observations = [
            # no feasible relays at all: everything empty
            _obs(0, 0),
            # feasible relays but none improving (best exists, no gain)
            _obs(
                0,
                1,
                best={RelayType.COR: (7, 150.0)},
                feasible={RelayType.COR: 3},
            ),
            # a mixed case: COR improves twice, PLR has feasible-only
            _obs(
                0,
                2,
                improving={RelayType.COR: ((7, 30.0), (9, 12.5))},
                best={RelayType.COR: (7, 90.0)},
                feasible={RelayType.COR: 4, RelayType.PLR: 2},
                groups={RelayType.COR: (True, True, True, False)},
            ),
        ]
        table = ObservationTable.from_observations(observations)
        assert table.num_cases == 3
        assert table.imp_indptr[-1] == 2
        counts = table.improving_counts()
        cor = RELAY_TYPE_ORDER.index(RelayType.COR)
        assert counts[cor].tolist() == [0, 0, 2]
        assert table.improved_count(cor) == 1
        for code in range(NUM_RELAY_TYPES):
            if code != cor:
                assert table.improved_count(code) == 0
        # materialized objects are exactly the originals
        assert table.materialized() == observations

    def test_empty_type_entries(self):
        table = ObservationTable.from_observations([_obs(0, 0)])
        for code in range(NUM_RELAY_TYPES):
            cases, relays, gains = table.type_entries(code)
            assert cases.size == relays.size == gains.size == 0
            got_cases, got_gains = table.best_gain_per_improved_case(code)
            assert got_cases.size == got_gains.size == 0

    def test_empty_table(self):
        table = ObservationTable.empty()
        assert table.num_cases == 0
        assert table.materialized() == []
        assert ObservationTable.concat([]).num_cases == 0

    def test_best_gain_segments(self):
        observations = [
            _obs(
                0,
                0,
                improving={RelayType.PLR: ((1, 5.0), (2, 25.0), (3, 10.0))},
                best={RelayType.PLR: (2, 95.0)},
                feasible={RelayType.PLR: 3},
            ),
            _obs(0, 1),
            _obs(
                0,
                2,
                improving={RelayType.PLR: ((4, 40.0),)},
                best={RelayType.PLR: (4, 80.0)},
                feasible={RelayType.PLR: 1},
            ),
        ]
        table = ObservationTable.from_observations(observations)
        plr = RELAY_TYPE_ORDER.index(RelayType.PLR)
        cases, gains = table.best_gain_per_improved_case(plr)
        assert cases.tolist() == [0, 2]
        assert gains.tolist() == [25.0, 40.0]

    def test_from_observations_with_shared_pools(self):
        pools = TablePools.fresh()
        t1 = ObservationTable.from_observations([_obs(0, 0)], pools=pools)
        t2 = ObservationTable.from_observations([_obs(1, 0)], pools=pools)
        merged = ObservationTable.concat([t1, t2])
        assert merged.pools is pools
        assert merged.num_cases == 2
        assert merged.round_idx.tolist() == [0, 1]

    def test_interner_is_stable(self):
        pool = TablePools.fresh()
        a = pool.countries.code("DE")
        b = pool.countries.code("JP")
        assert pool.countries.code("DE") == a
        assert pool.countries.codes(["JP", "DE"]).tolist() == [b, a]
        assert pool.countries[a] == "DE"
