"""Tests for the traceroute engine."""

import numpy as np
import pytest


def _probe_endpoints(world, i, j):
    probes = world.atlas.all_probes()
    return probes[i].node.endpoint, probes[j].node.endpoint


class TestTraceroute:
    def test_trace_structure(self, small_world):
        src, dst = _probe_endpoints(small_world, 0, 40)
        rng = np.random.default_rng(0)
        hops = small_world.traceroute_engine.trace(src, dst, rng)
        assert hops
        assert [h.hop for h in hops] == list(range(1, len(hops) + 1))
        assert hops[-1].city_key == dst.city_key

    def test_cumulative_rtts_roughly_increase(self, small_world):
        src, dst = _probe_endpoints(small_world, 0, 40)
        rng = np.random.default_rng(1)
        hops = small_world.traceroute_engine.trace(src, dst, rng)
        answered = [h.rtt_ms for h in hops[:-1] if h.rtt_ms is not None]
        if len(answered) >= 2:
            # per-hop jitter is small; allow slight local inversions
            assert answered[-1] >= answered[0] * 0.9

    def test_some_hops_may_be_silent(self, small_world):
        rng = np.random.default_rng(2)
        silent = 0
        total = 0
        for j in range(30, 60, 3):
            src, dst = _probe_endpoints(small_world, 0, j)
            hops = small_world.traceroute_engine.trace(src, dst, rng)
            total += len(hops)
            silent += sum(1 for h in hops if h.rtt_ms is None)
        assert 0 < silent < total

    def test_last_hop_rtt_matches_ping_scale(self, small_world):
        src, dst = _probe_endpoints(small_world, 0, 40)
        base = small_world.latency.base_rtt_ms(src, dst)
        rng = np.random.default_rng(3)
        values = []
        for _ in range(10):
            rtt = small_world.traceroute_engine.last_hop_rtt(src, dst, rng)
            if rtt is not None:
                values.append(rtt)
        assert values
        med = sorted(values)[len(values) // 2]
        assert med == pytest.approx(base, rel=0.5)

