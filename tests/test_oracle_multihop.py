"""Tests for the VIA-style predictor and the 1-vs-2-relay study."""

import numpy as np
import pytest

from repro.analysis.multihop import two_relay_study
from repro.core.oracle import (
    LaneHistory,
    RelayPredictor,
    evaluate_prediction,
    evaluate_prediction_loop,
)
from repro.core.results import CampaignResult, PairObservation
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError


def _obs(round_index, cc1, cc2, improving, direct=100.0):
    return PairObservation(
        round_index=round_index,
        e1_id="a",
        e2_id="b",
        e1_cc=cc1,
        e2_cc=cc2,
        e1_city=f"X/{cc1}",
        e2_city=f"Y/{cc2}",
        direct_rtt_ms=direct,
        best_by_type={},
        improving_by_type={RelayType.COR: tuple(improving)},
        feasible_by_type={RelayType.COR: len(improving)},
    )


class TestRelayPredictor:
    def test_predicts_most_frequent(self):
        predictor = RelayPredictor()
        for _ in range(3):
            predictor.observe(_obs(0, "DE", "US", [(1, 10.0), (2, 5.0)]))
        predictor.observe(_obs(0, "DE", "US", [(2, 5.0)]))
        predictor.observe(_obs(0, "DE", "US", [(3, 50.0)]))
        # relay 2 improved 4 times, relay 1 three times, relay 3 once
        assert predictor.predict(_obs(1, "DE", "US", []), k=2) == [2, 1]

    def test_country_pair_key_symmetric(self):
        predictor = RelayPredictor()
        predictor.observe(_obs(0, "DE", "US", [(7, 10.0)]))
        assert predictor.predict(_obs(1, "US", "DE", []), k=1) == [7]

    def test_no_history_predicts_empty(self):
        predictor = RelayPredictor()
        assert predictor.predict(_obs(0, "FR", "JP", []), k=3) == []
        assert not predictor.has_history(_obs(0, "FR", "JP", []))

    def test_bad_k(self):
        predictor = RelayPredictor()
        with pytest.raises(AnalysisError):
            predictor.predict(_obs(0, "DE", "US", []), k=0)


class TestEvaluatePrediction:
    def test_needs_two_rounds(self, small_campaign_result):
        single = CampaignResult(
            rounds=small_campaign_result.rounds[:1],
            registry=small_campaign_result.registry,
        )
        with pytest.raises(AnalysisError):
            evaluate_prediction(single)

    def test_score_ranges(self, small_campaign_result):
        score = evaluate_prediction(small_campaign_result, k=3)
        assert score.evaluated >= 0
        assert 0.0 <= score.hit_rate <= 1.0
        assert 0.0 <= score.captured_gain_frac <= 1.0

    def test_bigger_k_never_worse(self, small_campaign_result):
        k1 = evaluate_prediction(small_campaign_result, k=1)
        k5 = evaluate_prediction(small_campaign_result, k=5)
        assert k5.hit_at_k >= k1.hit_at_k
        assert k5.captured_gain_frac >= k1.captured_gain_frac - 1e-9

    def test_history_helps(self, small_campaign_result):
        """With frequency-stable winners, prediction should capture a
        meaningful share of the oracle gain."""
        score = evaluate_prediction(small_campaign_result, k=5)
        if score.evaluated >= 10:
            assert score.captured_gain_frac > 0.3


class TestColumnarParity:
    """The columnar predictor/evaluation must be bit-equal to the loops."""

    def test_evaluate_prediction_bit_equal(self, small_campaign_result):
        for relay_type in RELAY_TYPE_ORDER:
            for k in (1, 3, 5):
                columnar = evaluate_prediction(small_campaign_result, relay_type, k)
                loop = evaluate_prediction_loop(small_campaign_result, relay_type, k)
                assert columnar.evaluated == loop.evaluated
                assert columnar.hit_at_k == loop.hit_at_k
                # bit-equal, not approximately equal: the columnar path
                # accumulates the captured-gain sum in the loop's order
                assert columnar.captured_gain_frac == loop.captured_gain_frac

    def test_lane_history_matches_loop_predictor(self, small_campaign_result):
        table = small_campaign_result.table
        for relay_type in (RelayType.COR, RelayType.RAR_OTHER):
            history = LaneHistory.from_table(table, relay_type)
            predictor = RelayPredictor(relay_type)
            for obs in small_campaign_result.observations():
                predictor.observe(obs)
            seen = set()
            for obs in small_campaign_result.observations():
                key = tuple(sorted((obs.e1_cc, obs.e2_cc)))
                if key in seen:
                    continue
                seen.add(key)
                assert history.predict_ccs(obs.e1_cc, obs.e2_cc, 4) == (
                    predictor.predict(obs, 4)
                )
            assert history.num_lanes <= len(seen)

    def test_lane_history_unknown_country_empty(self, small_campaign_result):
        history = LaneHistory.from_table(small_campaign_result.table)
        assert history.predict_ccs("ZZ", "XX", 3) == []

    def test_columnar_needs_two_rounds(self, small_campaign_result):
        single = CampaignResult(
            rounds=small_campaign_result.rounds[:1],
            registry=small_campaign_result.registry,
        )
        with pytest.raises(AnalysisError):
            evaluate_prediction(single)

    def test_columnar_k_validation(self, small_campaign_result):
        reference = evaluate_prediction(small_campaign_result, RelayType.COR, 1)
        if reference.evaluated == 0:
            pytest.skip("fixture evaluated nothing")
        with pytest.raises(AnalysisError):
            evaluate_prediction(small_campaign_result, RelayType.COR, 0)
        with pytest.raises(AnalysisError):
            evaluate_prediction_loop(small_campaign_result, RelayType.COR, 0)


class TestTwoRelayStudy:
    def test_study_runs(self, small_world):
        probes = [p.node.endpoint for p in small_world.atlas.all_probes()[:12]]
        relays = [
            i.node.endpoint for i in small_world.colo_pool.live_interfaces()[:20]
        ]
        study = two_relay_study(
            small_world.latency, probes, relays, np.random.default_rng(0)
        )
        assert study.pairs > 0
        # a strict 2-relay path (r1 != r2) is not a superset of 1-relay
        # paths, so its improved count can land on either side; both must
        # be in a plausible band
        assert 0 <= study.two_relay_improved <= study.pairs
        assert 0 <= study.one_relay_improved <= study.pairs
        assert study.extra_gain_ms_median >= 0.0

    def test_one_relay_is_usually_enough(self, small_world):
        """The Han et al. claim the paper builds on."""
        probes = [p.node.endpoint for p in small_world.atlas.all_probes()[:16]]
        relays = [
            i.node.endpoint for i in small_world.colo_pool.live_interfaces()[:25]
        ]
        study = two_relay_study(
            small_world.latency, probes, relays, np.random.default_rng(1)
        )
        assert study.one_relay_captures_frac >= 0.5

    def test_input_validation(self, small_world):
        rng = np.random.default_rng(2)
        probes = [p.node.endpoint for p in small_world.atlas.all_probes()[:3]]
        with pytest.raises(AnalysisError):
            two_relay_study(small_world.latency, probes[:1], probes, rng)
        with pytest.raises(AnalysisError):
            two_relay_study(small_world.latency, probes, probes[:1], rng)
