"""Tests for endpoint selection at eyeballs (Sec 2.1)."""

import numpy as np

from repro.core.config import CampaignConfig
from repro.core.eyeballs import EyeballSelector
from repro.topology.types import ASType


class TestSelectionStages:
    def test_cutoff_excludes_small_players(self, small_world):
        selector = EyeballSelector(small_world, CampaignConfig())
        candidates = selector.candidate_tuples()
        for asn, cc in candidates:
            assert small_world.apnic.coverage(asn, cc) >= 10.0

    def test_verification_keeps_only_eyeballs(self, small_world):
        selector = EyeballSelector(small_world, CampaignConfig())
        for asn, _ in selector.verified_tuples():
            assert small_world.graph.get_as(asn).as_type is ASType.EYEBALL

    def test_verification_is_a_subset_of_candidates(self, small_world):
        selector = EyeballSelector(small_world, CampaignConfig())
        assert selector.verified_tuples() <= set(selector.candidate_tuples())

    def test_eligible_probes_pass_platform_filters(self, small_world):
        cfg = CampaignConfig()
        selector = EyeballSelector(small_world, cfg)
        latest = small_world.config.infrastructure.latest_firmware
        verified_asns = {asn for asn, _ in selector.verified_tuples()}
        for probe in selector.eligible_probes():
            assert probe.firmware >= latest
            assert probe.is_public and probe.is_connected and probe.is_geolocated
            assert probe.stability_30d >= cfg.min_probe_stability
            assert probe.asn in verified_asns

    def test_higher_cutoff_selects_fewer(self, small_world):
        low = EyeballSelector(small_world, CampaignConfig(eyeball_cutoff_pct=5.0))
        high = EyeballSelector(small_world, CampaignConfig(eyeball_cutoff_pct=40.0))
        assert len(high.verified_tuples()) <= len(low.verified_tuples())


class TestSampling:
    def test_one_probe_per_country(self, small_world):
        selector = EyeballSelector(small_world, CampaignConfig())
        sampled = selector.sample_endpoints(np.random.default_rng(0))
        countries = [p.cc for p in sampled]
        assert len(countries) == len(set(countries))
        assert set(countries) == set(selector.covered_countries())

    def test_sampling_varies_between_rounds(self, small_world):
        selector = EyeballSelector(small_world, CampaignConfig())
        a = {p.probe_id for p in selector.sample_endpoints(np.random.default_rng(1))}
        b = {p.probe_id for p in selector.sample_endpoints(np.random.default_rng(2))}
        assert a != b

    def test_sampling_deterministic_per_rng(self, small_world):
        selector = EyeballSelector(small_world, CampaignConfig())
        a = [p.probe_id for p in selector.sample_endpoints(np.random.default_rng(3))]
        b = [p.probe_id for p in selector.sample_endpoints(np.random.default_rng(3))]
        assert a == b

    def test_max_countries_cap(self, small_world):
        selector = EyeballSelector(small_world, CampaignConfig(max_countries=5))
        sampled = selector.sample_endpoints(np.random.default_rng(4))
        assert len(sampled) == 5

    def test_two_step_sampling_hits_multiple_ases_over_time(self, small_world):
        """Countries with several verified eyeballs should not always
        sample the same AS (step (i) randomises the AS)."""
        selector = EyeballSelector(small_world, CampaignConfig())
        by_country: dict[str, set[int]] = {}
        for round_index in range(12):
            rng = np.random.default_rng(100 + round_index)
            for probe in selector.sample_endpoints(rng):
                by_country.setdefault(probe.cc, set()).add(probe.asn)
        multi_as_countries = {
            cc
            for cc, _ in selector.verified_tuples()
            if len({a for a, c in selector.verified_tuples() if c == cc}) > 1
        }
        probed_multi = [cc for cc in multi_as_countries if len(by_country.get(cc, set())) > 1]
        if multi_as_countries:
            assert probed_multi, "AS-level sampling never rotated"
