"""Tests for the ground-truth colo interface pool."""

import numpy as np

from repro.measurement.nodes import NodeKind
from repro.topology.types import COLO_TENANT_TYPES


class TestPoolGeneration:
    def test_pool_nonempty(self, small_world):
        assert len(small_world.colo_pool.interfaces()) > 100

    def test_interfaces_owned_by_tenants(self, small_world):
        for itf in small_world.colo_pool.interfaces():
            as_type = small_world.graph.get_as(itf.node.asn).as_type
            assert as_type in COLO_TENANT_TYPES

    def test_owner_is_facility_member(self, small_world):
        facilities = small_world.topology.facilities
        for itf in small_world.colo_pool.interfaces():
            assert itf.node.asn in facilities[itf.facility_id].members

    def test_non_relocated_interfaces_at_facility_city(self, small_world):
        facilities = small_world.topology.facilities
        for itf in small_world.colo_pool.interfaces():
            if not itf.relocated:
                assert itf.node.city_key == facilities[itf.facility_id].city_key

    def test_relocated_interfaces_moved(self, small_world):
        facilities = small_world.topology.facilities
        relocated = [i for i in small_world.colo_pool.interfaces() if i.relocated]
        assert relocated, "aging must relocate some interfaces"
        for itf in relocated:
            assert itf.node.city_key != facilities[itf.facility_id].city_key

    def test_dead_interfaces_exist_and_dont_reply(self, small_world):
        dead = [i for i in small_world.colo_pool.interfaces() if i.is_dead]
        assert dead, "aging must kill some interfaces"
        rng = np.random.default_rng(0)
        engine = small_world.ping_engine
        live_probe = small_world.atlas.all_probes()[0].node.endpoint
        replies = sum(
            1
            for itf in dead[:20]
            if engine.is_responsive(live_probe, itf.node.endpoint, rng)
        )
        assert replies == 0

    def test_live_interfaces_subset(self, small_world):
        pool = small_world.colo_pool
        live = pool.live_interfaces()
        assert 0 < len(live) < len(pool.interfaces())
        assert all(not i.is_dead for i in live)

    def test_kind_is_colo(self, small_world):
        for itf in small_world.colo_pool.interfaces():
            assert itf.node.kind is NodeKind.COLO_IP

    def test_lookup_by_node_id(self, small_world):
        first = small_world.colo_pool.interfaces()[0]
        assert small_world.colo_pool.by_node_id(first.node.node_id) is first
