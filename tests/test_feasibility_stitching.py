"""Tests for the speed-of-light feasibility bound and overlay stitching."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.feasibility import feasible_relays, is_feasible
from repro.core.stitching import improvement_ms, is_tiv, stitch_rtt
from repro.errors import AnalysisError
from repro.geo.cities import city as city_of
from repro.geo.distance import propagation_delay_ms
from repro.latency.model import Endpoint


def _ep(node_id: str, city: str, access: float = 1.0) -> Endpoint:
    return Endpoint(node_id=node_id, asn=1000, city_key=city, access_ms=access)


class TestFeasibility:
    def test_on_path_relay_feasible(self):
        e1 = _ep("e1", "London/GB")
        e2 = _ep("e2", "New York/US")
        relay = _ep("r", "Dublin/IE")  # roughly between them
        direct = 2.0 * propagation_delay_ms(
            city_of("London/GB").location, city_of("New York/US").location
        )
        # a generous direct RTT (real paths are always inflated)
        assert is_feasible(relay, e1, e2, direct * 1.5)

    def test_far_relay_infeasible(self):
        e1 = _ep("e1", "London/GB")
        e2 = _ep("e2", "Paris/FR")
        relay = _ep("r", "Sydney/AU")
        direct = 2.0 * propagation_delay_ms(
            city_of("London/GB").location, city_of("Paris/FR").location
        )
        assert not is_feasible(relay, e1, e2, direct * 2.0)

    def test_bound_is_exact_equality_inclusive(self):
        e1 = _ep("e1", "London/GB")
        e2 = _ep("e2", "Paris/FR")
        relay = _ep("r", "Brussels/BE")
        detour = propagation_delay_ms(
            city_of("London/GB").location, city_of("Brussels/BE").location
        ) + propagation_delay_ms(
            city_of("Brussels/BE").location, city_of("Paris/FR").location
        )
        assert is_feasible(relay, e1, e2, 2.0 * detour)
        assert not is_feasible(relay, e1, e2, 2.0 * detour - 0.001)

    def test_feasible_relays_filters(self):
        e1 = _ep("e1", "London/GB")
        e2 = _ep("e2", "New York/US")
        relays = [_ep("good", "Dublin/IE"), _ep("bad", "Tokyo/JP")]
        direct = 2.0 * propagation_delay_ms(
            city_of("London/GB").location, city_of("New York/US").location
        ) * 1.4
        kept = feasible_relays(relays, e1, e2, direct)
        assert [r.node_id for r in kept] == ["good"]

    def test_filter_never_removes_winner(self, small_world):
        """Soundness: any relay whose *actual* stitched RTT beats the direct
        RTT must pass the feasibility bound (the bound is a lower bound on
        the achievable stitched RTT)."""
        model = small_world.latency
        probes = small_world.atlas.all_probes()
        rng = np.random.default_rng(0)
        checked = 0
        for i in range(0, 40, 4):
            e1, e2 = probes[i].node.endpoint, probes[i + 2].node.endpoint
            direct = model.base_rtt_ms(e1, e2)
            if direct is None:
                continue
            for j in range(1, 40, 5):
                relay = probes[j].node.endpoint
                if relay.node_id in (e1.node_id, e2.node_id):
                    continue
                leg1 = model.base_rtt_ms(e1, relay)
                leg2 = model.base_rtt_ms(e2, relay)
                if leg1 is None or leg2 is None:
                    continue
                if leg1 + leg2 < direct:  # an actual winner
                    assert is_feasible(relay, e1, e2, direct)
                    checked += 1
        assert checked > 0


class TestStitching:
    def test_stitch_adds(self):
        assert stitch_rtt(10.0, 20.0) == 30.0

    def test_stitch_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            stitch_rtt(0.0, 5.0)
        with pytest.raises(AnalysisError):
            stitch_rtt(5.0, -1.0)

    def test_tiv_detection(self):
        assert is_tiv(direct_rtt_ms=100.0, stitched_rtt_ms=90.0)
        assert not is_tiv(direct_rtt_ms=100.0, stitched_rtt_ms=100.0)
        assert not is_tiv(direct_rtt_ms=100.0, stitched_rtt_ms=110.0)

    def test_improvement_sign(self):
        assert improvement_ms(100.0, 90.0) == pytest.approx(10.0)
        assert improvement_ms(90.0, 100.0) == pytest.approx(-10.0)

    @given(st.floats(0.1, 1e4), st.floats(0.1, 1e4))
    def test_stitch_commutative(self, a, b):
        assert stitch_rtt(a, b) == stitch_rtt(b, a)
