"""Tests for the dataset substrates (APNIC, PeeringDB, prefix2as,
facility mapping, Periscope)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.topology.types import ASType


class TestApnic:
    def test_records_cover_eyeballs(self, small_world):
        eyeballs = set(small_world.topology.asns_of_type(ASType.EYEBALL))
        measured = {r.asn for r in small_world.apnic.records()}
        assert eyeballs <= measured

    def test_noneyeballs_in_data_with_low_coverage(self, small_world):
        """Enterprises appear in the data but below the 10% cutoff —
        the reason the paper needs a cutoff at all."""
        graph = small_world.graph
        non_eyeball = [
            r
            for r in small_world.apnic.records()
            if graph.get_as(r.asn).as_type is not ASType.EYEBALL
        ]
        assert non_eyeball
        assert all(r.coverage_pct < 10.0 for r in non_eyeball)

    def test_country_shares_bounded(self, small_world):
        totals: dict[str, float] = {}
        for r in small_world.apnic.records():
            totals[r.cc] = totals.get(r.cc, 0.0) + r.coverage_pct
        for cc, total in totals.items():
            assert total <= 100.0, f"{cc} coverage sums to {total}"

    def test_coverage_lookup(self, small_world):
        record = small_world.apnic.records()[0]
        assert small_world.apnic.coverage(record.asn, record.cc) == record.coverage_pct
        assert small_world.apnic.coverage(999999, "ZZ") is None

    def test_tuples_above_monotone(self, small_world):
        apnic = small_world.apnic
        assert len(apnic.tuples_above(5.0)) >= len(apnic.tuples_above(20.0))

    def test_fig1_curve_shape(self, small_world):
        """AS count decreases with cutoff and converges toward country
        count (Fig. 1's two lines meeting)."""
        curve = small_world.apnic.fig1_curve([0.0, 10.0, 30.0, 60.0, 90.0])
        num_ases = [n for _, n, _ in curve]
        num_countries = [c for _, _, c in curve]
        assert num_ases == sorted(num_ases, reverse=True)
        assert all(a >= c for a, c in zip(num_ases, num_countries))
        # at high cutoffs at most ~one AS per country remains
        _, ases_at_90, countries_at_90 = curve[-1]
        assert ases_at_90 <= countries_at_90 * 1.5 + 1


class TestPeeringDB:
    def test_some_facilities_closed(self, small_world):
        pdb = small_world.peeringdb
        closed = pdb.closed_facility_ids()
        assert closed, "aging must close some facilities"
        for fac_id in closed:
            assert not pdb.has_facility(fac_id)
            with pytest.raises(DatasetError):
                pdb.facility(fac_id)

    def test_membership_churn(self, small_world):
        pdb = small_world.peeringdb
        churned = 0
        for fac in pdb.facilities():
            current = pdb.current_members(fac.fac_id)
            assert current <= fac.members
            churned += len(fac.members) - len(current)
        assert churned > 0, "aging must remove some memberships"

    def test_top_facilities_sorted_by_nets(self, small_world):
        pdb = small_world.peeringdb
        top = pdb.top_facility_ids(10)
        counts = [pdb.network_count(f) for f in top]
        assert counts == sorted(counts, reverse=True)

    def test_is_present_consistency(self, small_world):
        pdb = small_world.peeringdb
        fac = pdb.facilities()[0]
        member = next(iter(pdb.current_members(fac.fac_id)))
        assert pdb.is_present(member, fac.fac_id)
        assert not pdb.is_present(999999, fac.fac_id)

    def test_ixps_at_facility(self, small_world):
        pdb = small_world.peeringdb
        for fac in pdb.facilities()[:10]:
            ixps = pdb.ixps_at(fac.fac_id)
            assert len(ixps) == pdb.ixp_count(fac.fac_id)


class TestPrefix2AS:
    def test_ground_truth_lookup(self, small_world):
        asys = small_world.graph.get_as(small_world.graph.asns()[0])
        probe_ip = asys.prefixes[0].host(1)
        origins = small_world.prefix2as.origins(probe_ip)
        assert asys.asn in origins

    def test_unrouted_space_empty(self, small_world):
        from repro.net.ipv4 import IPv4Address

        assert small_world.prefix2as.origins(IPv4Address.parse("203.0.113.1")) == []

    def test_moas_prefixes_exist(self, small_world):
        moas = 0
        for asys in small_world.graph:
            for prefix in asys.prefixes:
                if len(set(small_world.prefix2as.origins(prefix.host(1)))) > 1:
                    moas += 1
        assert moas > 0, "aging must create some MOAS prefixes"

    def test_num_prefixes_at_least_ground_truth(self, small_world):
        ground = sum(len(a.prefixes) for a in small_world.graph)
        assert small_world.prefix2as.num_prefixes() == ground


class TestFacilityMapping:
    def test_dataset_shape(self, small_world):
        records = small_world.facility_mapping.records()
        assert len(records) > 100
        assert len(records) < len(small_world.colo_pool.interfaces()) + 1

    def test_defect_classes_present(self, small_world):
        records = small_world.facility_mapping.records()
        multi = [r for r in records if not r.is_single_facility]
        assert multi, "some records must be non-converged (multi-facility)"
        # ASN churn: recorded ASN disagrees with current origin
        churned = [
            r
            for r in records
            if set(small_world.prefix2as.origins(r.ip)) != {r.recorded_asn}
        ]
        assert churned, "some records must have ownership churn or MOAS"

    def test_candidate_sets_bounded(self, small_world):
        for r in small_world.facility_mapping.records():
            assert 1 <= len(r.candidate_facility_ids) <= 3

    def test_ips_unique(self, small_world):
        records = small_world.facility_mapping.records()
        ips = [r.ip for r in records]
        assert len(ips) == len(set(ips))


class TestPeriscope:
    def test_partial_city_coverage(self, small_world):
        covered = set(small_world.periscope.covered_cities())
        facility_cities = {
            f.city_key for f in small_world.topology.facilities.values()
        }
        assert covered <= facility_cities
        assert 0 < len(covered) < len(facility_cities) or len(facility_cities) <= 2

    def test_same_city_rtt_small_wrong_city_large(self, small_world):
        """In-city interfaces mostly measure small last-hop RTTs; a few
        legitimately exceed the threshold when the same-city BGP path
        detours (the paper also lost about half of its candidates here)."""
        periscope = small_world.periscope
        rng = np.random.default_rng(0)
        threshold = small_world.config.datasets.geolocation_rtt_threshold_ms
        cities = periscope.covered_cities()
        candidates = [
            i
            for i in small_world.colo_pool.live_interfaces()
            if not i.relocated
            and small_world.topology.facilities[i.facility_id].city_key in cities
        ][:12]
        assert candidates
        same_rtts = []
        wrong_rtts = []
        for itf in candidates:
            home = small_world.topology.facilities[itf.facility_id].city_key
            same = periscope.min_last_hop_rtt(itf.node.endpoint, home, rng)
            if same is not None:
                same_rtts.append(same)
            far = [c for c in cities if c != home]
            if far:
                wrong = periscope.min_last_hop_rtt(itf.node.endpoint, far[-1], rng)
                if wrong is not None:
                    wrong_rtts.append(wrong)
        assert same_rtts
        passing = sum(1 for r in same_rtts if r <= threshold)
        assert passing >= len(same_rtts) * 0.3
        if wrong_rtts:
            assert sorted(same_rtts)[len(same_rtts) // 2] < sorted(wrong_rtts)[
                len(wrong_rtts) // 2
            ]

    def test_uncovered_city_returns_none(self, small_world):
        rng = np.random.default_rng(1)
        itf = small_world.colo_pool.live_interfaces()[0]
        uncovered = [
            f.city_key
            for f in small_world.topology.facilities.values()
            if f.city_key not in set(small_world.periscope.covered_cities())
        ]
        if uncovered:
            assert (
                small_world.periscope.min_last_hop_rtt(
                    itf.node.endpoint, uncovered[0], rng
                )
                is None
            )
