"""Unit tests for the AS graph and topology entities."""

import pytest

from repro.errors import TopologyError
from repro.net.ipv4 import IPv4Prefix
from repro.topology.facilities import IXP, Facility
from repro.topology.graph import ASGraph, Relationship
from repro.topology.types import ASType, AutonomousSystem


def _as(asn: int, cc: str = "DE", cities=("Frankfurt/DE",), as_type=ASType.EYEBALL):
    return AutonomousSystem(
        asn=asn,
        name=f"AS{asn}",
        as_type=as_type,
        cc=cc,
        pop_cities=tuple(cities),
        prefixes=(IPv4Prefix.parse(f"10.{asn % 250}.0.0/16"),),
    )


class TestAutonomousSystem:
    def test_primary_city(self):
        asys = _as(1, cities=("Berlin/DE", "Frankfurt/DE"))
        assert asys.primary_city == "Berlin/DE"
        assert asys.has_pop_in("Frankfurt/DE")
        assert not asys.has_pop_in("London/GB")

    def test_rejects_bad_asn(self):
        with pytest.raises(TopologyError):
            _as(0)

    def test_rejects_no_pops(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(1, "x", ASType.EYEBALL, "DE", ())

    def test_rejects_duplicate_pops(self):
        with pytest.raises(TopologyError):
            _as(1, cities=("Berlin/DE", "Berlin/DE"))

    def test_rejects_unknown_city(self):
        with pytest.raises(Exception):
            _as(1, cities=("Nowhere/DE",))


class TestFacilityEntities:
    def test_facility_properties(self):
        fac = Facility(1, "Equinox London 1", "Equinox", "London/GB",
                       frozenset({1, 2, 3}), frozenset({10}), True)
        assert fac.cc == "GB"
        assert fac.num_networks == 3
        assert fac.num_ixps == 1

    def test_facility_needs_members(self):
        with pytest.raises(TopologyError):
            Facility(1, "x", "x", "London/GB", frozenset(), frozenset(), False)

    def test_ixp_needs_facility(self):
        with pytest.raises(TopologyError):
            IXP(1, "X-IX", "London/GB", frozenset(), frozenset({1}))


class TestASGraph:
    def _graph(self):
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(_as(asn))
        return g

    def test_add_and_get(self):
        g = self._graph()
        assert g.get_as(1).asn == 1
        assert g.has_as(2)
        assert not g.has_as(99)
        assert len(g) == 4

    def test_duplicate_asn_rejected(self):
        g = self._graph()
        with pytest.raises(TopologyError):
            g.add_as(_as(1))

    def test_unknown_asn_raises(self):
        g = self._graph()
        with pytest.raises(TopologyError):
            g.get_as(99)

    def test_c2p_edges(self):
        g = self._graph()
        g.add_c2p(1, 2, ["Frankfurt/DE"])
        assert g.providers_of(1) == {2}
        assert g.customers_of(2) == {1}
        assert g.peers_of(1) == frozenset()
        adj = g.adjacency(1, 2)
        assert adj.rel is Relationship.C2P

    def test_p2p_edges(self):
        g = self._graph()
        g.add_p2p(1, 2, ["Frankfurt/DE"])
        assert g.peers_of(1) == {2}
        assert g.peers_of(2) == {1}

    def test_duplicate_edge_rejected(self):
        g = self._graph()
        g.add_c2p(1, 2, ["Frankfurt/DE"])
        with pytest.raises(TopologyError):
            g.add_p2p(2, 1, ["Frankfurt/DE"])

    def test_edge_needs_cities(self):
        g = self._graph()
        with pytest.raises(TopologyError):
            g.add_c2p(1, 2, [])

    def test_self_edge_rejected(self):
        g = self._graph()
        with pytest.raises(TopologyError):
            g.add_p2p(1, 1, ["Frankfurt/DE"])

    def test_adjacency_lookup_missing(self):
        g = self._graph()
        with pytest.raises(TopologyError):
            g.adjacency(1, 2)

    def test_degree_counts_all_kinds(self):
        g = self._graph()
        g.add_c2p(1, 2, ["Frankfurt/DE"])
        g.add_p2p(1, 3, ["Frankfurt/DE"])
        assert g.degree(1) == 2
        assert g.num_edges() == 2

    def test_validate_detects_cycle(self):
        g = self._graph()
        g.add_c2p(1, 2, ["Frankfurt/DE"])
        g.add_c2p(2, 3, ["Frankfurt/DE"])
        g.add_c2p(3, 1, ["Frankfurt/DE"])
        g.add_p2p(4, 1, ["Frankfurt/DE"])
        with pytest.raises(TopologyError, match="cycle"):
            g.validate()

    def test_validate_detects_isolated(self):
        g = self._graph()
        g.add_c2p(1, 2, ["Frankfurt/DE"])
        g.add_c2p(3, 2, ["Frankfurt/DE"])
        # AS 4 has no edges
        with pytest.raises(TopologyError, match="isolated"):
            g.validate()

    def test_validate_passes_good_graph(self):
        g = self._graph()
        g.add_c2p(1, 2, ["Frankfurt/DE"])
        g.add_c2p(3, 2, ["Frankfurt/DE"])
        g.add_p2p(4, 2, ["Frankfurt/DE"])
        g.validate()
