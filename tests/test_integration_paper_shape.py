"""Integration test: the paper's qualitative results must hold end-to-end.

Runs a short campaign over the full default world (seed 11) and asserts the
*shape* of every headline result — orderings, bands and directions, not the
paper's absolute numbers (our substrate is a simulator).  Paper values for
reference: improved fractions COR 76% / RAR_other 58% / PLR 43% /
RAR_eye 35%; 10 CORs in ~6 facilities cover ~58% of total cases; relays in
a third country beat same-country relays (75% vs 50% for COR); 74% of
pairs intercontinental; 19% of direct paths over 320 ms dropping to 11%
with COR.
"""

import pytest

from repro import CampaignConfig, MeasurementCampaign
from repro.analysis.countries import CountryChangeAnalysis
from repro.analysis.facilities import FacilityTable
from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.ranking import TopRelayAnalysis
from repro.analysis.voip import VoipAnalysis
from repro.core.types import RelayType


@pytest.fixture(scope="module")
def full_result(full_world):
    campaign = MeasurementCampaign(full_world, CampaignConfig(num_rounds=2))
    return campaign.run()


@pytest.fixture(scope="module")
def improvements(full_result):
    return ImprovementAnalysis(full_result)


class TestRelayTypeOrdering:
    def test_cor_wins(self, improvements):
        cor = improvements.improved_fraction(RelayType.COR)
        for other in (RelayType.RAR_OTHER, RelayType.PLR, RelayType.RAR_EYE):
            assert cor > improvements.improved_fraction(other)

    def test_full_ordering_matches_paper(self, improvements):
        fractions = {
            t: improvements.improved_fraction(t)
            for t in (RelayType.COR, RelayType.RAR_OTHER, RelayType.PLR, RelayType.RAR_EYE)
        }
        assert (
            fractions[RelayType.COR]
            > fractions[RelayType.RAR_OTHER]
            > fractions[RelayType.PLR]
            > fractions[RelayType.RAR_EYE]
        )

    def test_cor_band(self, improvements):
        assert 0.6 <= improvements.improved_fraction(RelayType.COR) <= 0.9

    def test_rar_other_band(self, improvements):
        assert 0.35 <= improvements.improved_fraction(RelayType.RAR_OTHER) <= 0.7

    def test_median_improvements_same_order_of_magnitude(self, improvements):
        """Paper: 12-14 ms medians; accept the same decade."""
        for relay_type in (RelayType.COR, RelayType.RAR_OTHER):
            med = improvements.median_improvement(relay_type)
            assert med is not None
            assert 5.0 <= med <= 80.0

    def test_large_gains_exist_but_are_minority(self, improvements):
        frac = improvements.fraction_above(RelayType.COR, 100.0)
        assert 0.0 < frac < 0.5

    def test_cor_redundancy(self, improvements):
        """Paper: a median of 8 COR relays improves each pair — more than
        any other type (high COR redundancy)."""
        cor = improvements.median_num_improving(RelayType.COR)
        eye = improvements.median_num_improving(RelayType.RAR_EYE)
        assert cor is not None and eye is not None
        assert cor > eye


class TestTopRelayConcentration:
    def test_few_cors_cover_most_gains(self, full_result, improvements):
        """Paper Fig 3: top-10 CORs reach ~75% of COR's improved cases."""
        ranking = TopRelayAnalysis(full_result)
        top10 = ranking.coverage_of_top(RelayType.COR, 10)
        all_cor = improvements.improved_fraction(RelayType.COR)
        assert top10 >= 0.5 * all_cor

    def test_top10_cors_concentrated_in_few_metros(self, full_result, full_world):
        """Paper: the top-10 CORs sit in ~6 facilities.  Relay sampling
        rotates IPs within facilities each round, so on short campaigns we
        assert concentration at the metro level."""
        ranking = TopRelayAnalysis(full_result)
        facilities = ranking.facilities_of_top(10)
        metros = {full_world.topology.facilities[f].city_key for f in facilities}
        assert len(metros) <= 8

    def test_rar_needs_many_more_relays(self, full_result):
        """Paper: RAR types need >>100 relays for their top coverage; the
        COR curve must rise much faster initially."""
        ranking = TopRelayAnalysis(full_result)
        cor10 = ranking.coverage_of_top(RelayType.COR, 10)
        rar10 = ranking.coverage_of_top(RelayType.RAR_OTHER, 10)
        assert cor10 > rar10

    def test_fig4_top10_cor_beats_other_top10s(self, full_result):
        ranking = TopRelayAnalysis(full_result)
        thresholds = [0.0, 10.0, 20.0]
        cor = ranking.fig4_curve(RelayType.COR, thresholds, top_n=10)
        for other in (RelayType.PLR, RelayType.RAR_EYE):
            other_curve = ranking.fig4_curve(other, thresholds, top_n=10)
            assert cor[0][1] > other_curve[0][1]


class TestTable1Features:
    def test_top_facilities_are_large_and_connected(self, full_result, full_world):
        """Paper Table 1: every top facility hosts >= 22 networks and >= 2
        IXPs; most offer cloud services."""
        rows = FacilityTable(full_result, full_world).rows(top_relays=20)
        assert len(rows) >= 5
        assert all(row.num_networks >= 10 for row in rows[:5])
        assert all(row.num_ixps >= 1 for row in rows[:5])
        cloudy = sum(1 for row in rows if row.cloud_services)
        assert cloudy / len(rows) >= 0.5

    def test_some_top_facilities_in_pdb_top10(self, full_result, full_world):
        rows = FacilityTable(full_result, full_world).rows(top_relays=20)
        assert any(row.pdb_top10 for row in rows)

    def test_top_facilities_at_major_hubs(self, full_result, full_world):
        from repro.geo.cities import city as city_of

        rows = FacilityTable(full_result, full_world).rows(top_relays=20)
        assert all(city_of(row.city_key).is_hub for row in rows)


class TestCountryAndVoip:
    def test_changing_country_helps(self, full_result):
        """Paper: the best third-country COR improves 75% of cases vs 50%
        for the best relay sharing a country with an endpoint."""
        rates = CountryChangeAnalysis(full_result).group_rates(RelayType.COR)
        assert rates.different_rate is not None and rates.same_rate is not None
        assert rates.different_rate > rates.same_rate + 0.05
        assert 0.6 <= rates.different_rate <= 0.95  # paper: 0.75
        assert 0.3 <= rates.same_rate <= 0.75  # paper: 0.50

    def test_changing_country_helps_other_types_weaker(self, full_result):
        """Paper: "Similar remarks apply for the other types, albeit with
        lower percentages"."""
        analysis = CountryChangeAnalysis(full_result)
        cor = analysis.group_rates(RelayType.COR)
        for relay_type in (RelayType.PLR, RelayType.RAR_OTHER, RelayType.RAR_EYE):
            rates = analysis.group_rates(relay_type)
            assert rates.different_rate is not None
            assert rates.different_rate > (rates.same_rate or 0.0)
            assert rates.different_rate < cor.different_rate

    def test_mostly_intercontinental(self, full_result):
        frac = CountryChangeAnalysis(full_result).intercontinental_fraction()
        assert 0.5 <= frac <= 0.95  # paper: 74%

    def test_voip_improvement(self, full_result):
        voip = VoipAnalysis(full_result)
        direct = voip.direct_poor_fraction()
        relayed = voip.relayed_poor_fraction(RelayType.COR)
        assert 0.02 <= direct <= 0.4  # paper: 19%
        assert relayed < direct  # paper: 19% -> 11%


class TestFilterFunnel:
    def test_funnel_proportions(self, full_result):
        """The Sec 2.2 funnel must shrink at every biting stage and keep a
        usable pool (paper: 2675 -> ... -> 356, i.e. ~13% survive)."""
        funnel = full_result.colo_filter_funnel
        assert len(funnel) == 6
        assert funnel == tuple(sorted(funnel, reverse=True))
        survival = funnel[-1] / funnel[0]
        assert 0.03 <= survival <= 0.5
