"""Tests for the inflation survey and the consolidated report."""

import numpy as np
import pytest

from repro.analysis.inflation import survey_inflation
from repro.analysis.report import full_report
from repro.core.results import CampaignResult, RelayRegistry
from repro.errors import AnalysisError


class TestInflationSurvey:
    def test_survey_shape(self, small_world):
        survey = survey_inflation(small_world, np.random.default_rng(0), num_pairs=80)
        assert survey.pairs > 20
        assert survey.median_inflation >= 1.0
        assert survey.p90_inflation >= survey.median_inflation
        assert 0.0 <= survey.frac_above_1_5 <= 1.0
        assert survey.median_as_path_len >= 2.0

    def test_inflation_exists(self, small_world):
        """The whole paper rests on direct paths being inflated; the
        generated world must exhibit it for a meaningful share of pairs."""
        survey = survey_inflation(small_world, np.random.default_rng(1), num_pairs=120)
        assert survey.frac_above_1_5 > 0.15

    def test_bad_num_pairs(self, small_world):
        with pytest.raises(AnalysisError):
            survey_inflation(small_world, np.random.default_rng(2), num_pairs=0)

    def test_deterministic_given_rng(self, small_world):
        a = survey_inflation(small_world, np.random.default_rng(3), num_pairs=40)
        b = survey_inflation(small_world, np.random.default_rng(3), num_pairs=40)
        assert a == b


class TestFullReport:
    def test_contains_all_sections(self, small_campaign_result, small_world):
        text = full_report(small_campaign_result, small_world)
        for fragment in (
            "campaign report",
            "Latency improvements per relay type",
            "How many relays are enough?",
            "Facilities of the top Colo relays",
            "Changing countries and paths",
            "VoIP quality",
            "Stability over time",
        ):
            assert fragment in text, fragment

    def test_without_world_skips_table(self, small_campaign_result):
        text = full_report(small_campaign_result, world=None)
        assert "Facilities of the top Colo relays" not in text
        assert "Latency improvements" in text

    def test_empty_result_rejected(self):
        empty = CampaignResult(rounds=[], registry=RelayRegistry())
        with pytest.raises(AnalysisError):
            full_report(empty)
