"""Unit tests for the repro.geo package."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeoError
from repro.geo.cities import all_cities, cities_in_country, city, hub_cities
from repro.geo.coords import GeoPoint
from repro.geo.countries import all_countries, continent_of, country
from repro.geo.distance import (
    EARTH_RADIUS_KM,
    SPEED_OF_LIGHT_FIBER_KM_PER_MS,
    fiber_delay_ms,
    great_circle_km,
    min_rtt_ms,
    propagation_delay_ms,
)

_lat = st.floats(-90, 90, allow_nan=False)
_lon = st.floats(-180, 180, allow_nan=False)


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(51.5, -0.1)
        assert p.lat == 51.5

    def test_bad_latitude(self):
        with pytest.raises(GeoError):
            GeoPoint(91.0, 0.0)

    def test_bad_longitude(self):
        with pytest.raises(GeoError):
            GeoPoint(0.0, 181.0)

    def test_hashable(self):
        assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1

    def test_str_hemispheres(self):
        assert "N" in str(GeoPoint(10.0, 20.0))
        assert "S" in str(GeoPoint(-10.0, 20.0))
        assert "W" in str(GeoPoint(0.0, -20.0))

    def test_radians(self):
        lat, lon = GeoPoint(90.0, 180.0).as_radians()
        assert lat == pytest.approx(math.pi / 2)
        assert lon == pytest.approx(math.pi)


class TestGreatCircle:
    def test_zero_distance(self):
        p = GeoPoint(48.0, 11.0)
        assert great_circle_km(p, p) == 0.0

    def test_symmetry(self):
        a, b = GeoPoint(51.5, -0.13), GeoPoint(40.7, -74.0)
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_london_new_york_about_5570km(self):
        a, b = GeoPoint(51.507, -0.128), GeoPoint(40.713, -74.006)
        assert great_circle_km(a, b) == pytest.approx(5570, rel=0.02)

    def test_antipodal_is_half_circumference(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 180.0)
        assert great_circle_km(a, b) == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    @given(_lat, _lon, _lat, _lon)
    def test_non_negative_and_bounded(self, lat1, lon1, lat2, lon2):
        d = great_circle_km(GeoPoint(lat1, lon1), GeoPoint(lat2, lon2))
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(_lat, _lon, _lat, _lon, _lat, _lon)
    def test_triangle_inequality_in_geometry(self, lat1, lon1, lat2, lon2, lat3, lon3):
        # the *physical* metric satisfies the triangle inequality; TIVs are a
        # property of routed latency, never of geometry
        a, b, c = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2), GeoPoint(lat3, lon3)
        assert great_circle_km(a, c) <= great_circle_km(a, b) + great_circle_km(b, c) + 1e-6


class TestDelays:
    def test_propagation_delay_formula(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 10.0)
        d = great_circle_km(a, b)
        assert propagation_delay_ms(a, b) == pytest.approx(d / SPEED_OF_LIGHT_FIBER_KM_PER_MS)

    def test_min_rtt_is_double(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(10.0, 10.0)
        assert min_rtt_ms(a, b) == pytest.approx(2 * propagation_delay_ms(a, b))

    def test_fiber_delay_applies_stretch(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 5.0)
        assert fiber_delay_ms(a, b, stretch=1.5) == pytest.approx(
            1.5 * propagation_delay_ms(a, b)
        )

    def test_stretch_below_one_rejected(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 5.0)
        with pytest.raises(ValueError):
            fiber_delay_ms(a, b, stretch=0.9)

    def test_light_speed_sanity(self):
        # transatlantic one-way in fiber is ~28 ms ideal
        a, b = GeoPoint(51.507, -0.128), GeoPoint(40.713, -74.006)
        assert 25 < propagation_delay_ms(a, b) < 32


class TestCountries:
    def test_known_country(self):
        assert country("DE").name == "Germany"
        assert continent_of("DE") == "EU"

    def test_unknown_country_raises(self):
        with pytest.raises(GeoError):
            country("XX")

    def test_all_countries_unique_codes(self):
        codes = [c.code for c in all_countries()]
        assert len(codes) == len(set(codes))

    def test_every_continent_present(self):
        continents = {c.continent for c in all_countries()}
        assert continents == {"EU", "NA", "SA", "AS", "AF", "OC"}

    def test_positive_populations(self):
        assert all(c.internet_users_m > 0 for c in all_countries())


class TestCities:
    def test_lookup_by_key(self):
        c = city("London/GB")
        assert c.cc == "GB"
        assert c.is_hub

    def test_unknown_city_raises(self):
        with pytest.raises(GeoError):
            city("Atlantis/XX")

    def test_unique_keys(self):
        keys = [c.key for c in all_cities()]
        assert len(keys) == len(set(keys))

    def test_every_country_has_a_city(self):
        countries_with_cities = {c.cc for c in all_cities()}
        assert countries_with_cities == {c.code for c in all_countries()}

    def test_cities_in_country(self):
        de = cities_in_country("DE")
        assert {c.name for c in de} >= {"Frankfurt", "Berlin"}
        assert cities_in_country("ZZ") == ()

    def test_hub_cities_subset(self):
        hubs = hub_cities()
        assert 0 < len(hubs) < len(all_cities())
        assert all(c.is_hub for c in hubs)
        # the paper's Table 1 metros must be hubs for the reproduction
        hub_names = {c.name for c in hubs}
        assert {"London", "Amsterdam", "Frankfurt", "New York", "Atlanta", "Hamburg", "Brussels"} <= hub_names

    def test_continent_property(self):
        assert city("Tokyo/JP").continent == "AS"

    def test_city_country_codes_valid(self):
        for c in all_cities():
            country(c.cc)  # raises GeoError if invalid
