"""Sharded cluster serving tier: sharding, v3 snapshots, worker fleets.

The load-bearing invariant throughout: a query's pair lane and country
lane land in the same shard by construction, so the cluster answers are
byte-identical to the in-process service for any worker count.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import ServiceError
from repro.service import (
    CLUSTER_SNAPSHOT_VERSION,
    NUM_SHARDS,
    SNAPSHOT_VERSION,
    TIER_COUNTRY,
    TIER_PAIR,
    ClusterService,
    LoadgenConfig,
    RelayDirectory,
    ShortcutService,
    cross_world_service,
    load_cluster_snapshot,
    migrate_snapshot,
    replay,
    save_cluster_snapshot,
)
from repro.service.cluster import (
    shard_of_pair_keys,
    shard_of_queries,
    split_directory_blocks,
)


@pytest.fixture(scope="module")
def service(small_campaign_result):
    return ShortcutService.from_campaign(small_campaign_result)


def _v2_bytes(service: ShortcutService) -> bytes:
    buffer = io.BytesIO()
    service.save(buffer)
    return buffer.getvalue()


def _sample_codes(service, n=512, seed=7):
    """Random known endpoint-code pairs drawn from the directory."""
    codes = service.encode_endpoints(sorted(service.directory.endpoint_ids()))
    rng = np.random.default_rng(seed)
    return (
        codes[rng.integers(codes.size, size=n)],
        codes[rng.integers(codes.size, size=n)],
    )


class TestSharding:
    def test_pair_key_hash_deterministic_and_in_range(self):
        keys = np.arange(10_000, dtype=np.int64) * 17
        a = shard_of_pair_keys(keys, NUM_SHARDS)
        b = shard_of_pair_keys(keys, NUM_SHARDS)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < NUM_SHARDS
        # the splitmix finalizer must spread prefix-sharing keys: every
        # shard should own a non-trivial slice of a 10k-key population
        counts = np.bincount(a, minlength=NUM_SHARDS)
        assert counts.min() > 0

    def test_query_shard_matches_country_pair_shard(self, service):
        from repro.core.table import ObservationTable

        src, dst = _sample_codes(service)
        ep_cc = service.directory.endpoint_country_codes()
        got = shard_of_queries(ep_cc, src, dst, NUM_SHARDS)
        keys = ObservationTable.pack_pairs(
            ep_cc[src].astype(np.int64), ep_cc[dst].astype(np.int64)
        )
        assert np.array_equal(got, shard_of_pair_keys(keys, NUM_SHARDS))

    def test_unknown_endpoints_clamp_deterministically(self, service):
        ep_cc = service.directory.endpoint_country_codes()
        src = np.asarray([-1, 0], np.int64)
        dst = np.asarray([0, -1], np.int64)
        a = shard_of_queries(ep_cc, src, dst, NUM_SHARDS)
        b = shard_of_queries(ep_cc, src, dst, NUM_SHARDS)
        assert np.array_equal(a, b)

    def test_split_partitions_every_lane_once(self, service):
        shards = split_directory_blocks(service.directory, NUM_SHARDS)
        for tier in (TIER_PAIR, TIER_COUNTRY):
            for code, relay_type in enumerate(RELAY_TYPE_ORDER):
                block = service.directory.block(tier, relay_type)
                seen = np.concatenate(
                    [
                        s[(tier, code)].keys
                        for s in shards
                        if (tier, code) in s
                    ]
                    or [np.empty(0, np.int64)]
                )
                assert sorted(seen.tolist()) == sorted(block.keys.tolist())

    def test_split_rejects_bad_shard_count(self, service):
        with pytest.raises(ServiceError):
            split_directory_blocks(service.directory, 0)


class TestSnapshotV3:
    def test_roundtrip_rebuilds_full_directory(self, service, tmp_path):
        path = tmp_path / "cluster.npz"
        save_cluster_snapshot(service, path)
        snapshot = load_cluster_snapshot(path)
        assert snapshot.num_shards == NUM_SHARDS
        rebuilt = snapshot.full_directory()
        assert (
            rebuilt.block_signature()
            == service.directory.block_signature()
        )

    def test_save_is_deterministic(self, service):
        a, b = io.BytesIO(), io.BytesIO()
        save_cluster_snapshot(service, a)
        save_cluster_snapshot(service, b)
        assert a.getvalue() == b.getvalue()

    def test_mmap_and_eager_loads_agree(self, service, tmp_path):
        path = tmp_path / "cluster.npz"
        save_cluster_snapshot(service, path)
        lazy = load_cluster_snapshot(path, mmap=True)
        eager = load_cluster_snapshot(path, mmap=False)
        for shard in range(NUM_SHARDS):
            a, b = lazy.shard_blocks(shard), eager.shard_blocks(shard)
            assert set(a) == set(b)
            for key in a:
                assert np.array_equal(a[key].keys, b[key].keys)
                assert np.array_equal(a[key].relays, b[key].relays)

    def test_v2_snapshot_rejected_with_migrate_hint(self, service):
        with pytest.raises(ServiceError, match="migrate"):
            load_cluster_snapshot(io.BytesIO(_v2_bytes(service)))

    def test_v3_snapshot_rejected_by_v2_loader(self, service):
        buffer = io.BytesIO()
        save_cluster_snapshot(service, buffer)
        buffer.seek(0)
        with pytest.raises(ServiceError, match="sharded cluster"):
            RelayDirectory.load(buffer)

    def test_unknown_version_rejected(self, service, tmp_path):
        path = tmp_path / "cluster.npz"
        save_cluster_snapshot(service, path)
        arrays = dict(np.load(path))
        arrays["meta"] = arrays["meta"].copy()
        arrays["meta"][0] = CLUSTER_SNAPSHOT_VERSION + 1
        bad = tmp_path / "bad.npz"
        np.savez(bad, **arrays)
        with pytest.raises(ServiceError, match="unknown snapshot version"):
            load_cluster_snapshot(bad)

    def test_migrate_v2_to_v3(self, service, tmp_path):
        assert CLUSTER_SNAPSHOT_VERSION == SNAPSHOT_VERSION + 1
        dst = tmp_path / "migrated.npz"
        migrate_snapshot(io.BytesIO(_v2_bytes(service)), dst)
        snapshot = load_cluster_snapshot(dst)
        assert (
            snapshot.full_directory().block_signature()
            == service.directory.block_signature()
        )

    def test_segment_service_answers_match_shard_queries(self, service):
        buffer = io.BytesIO()
        save_cluster_snapshot(service, buffer)
        buffer.seek(0)
        snapshot = load_cluster_snapshot(buffer)
        src, dst = _sample_codes(service, n=256)
        ep_cc = service.directory.endpoint_country_codes()
        shard = shard_of_queries(ep_cc, src, dst, snapshot.num_shards)
        want = service.route_many(src, dst, RelayType.COR, 3)
        for s in np.unique(shard).tolist():
            rows = shard == s
            got = snapshot.segment_service(s).route_many(
                src[rows], dst[rows], RelayType.COR, 3
            )
            assert np.array_equal(got.relay_ids, want.relay_ids[rows])
            assert np.array_equal(got.tier, want.tier[rows])


class TestClusterInvariance:
    CONFIG = LoadgenConfig(num_queries=4096, batch_size=512)

    def test_worker_count_invariant_and_matches_in_process(self, service):
        want = replay(service, self.CONFIG)
        digests = {want.answers_digest}
        for workers in (1, 2):
            with ClusterService.from_service(
                service, workers=workers, capacity=1024
            ) as cluster:
                assert cluster.workers == workers
                digests.add(replay(cluster, self.CONFIG).answers_digest)
        assert len(digests) == 1

    def test_route_many_byte_identical(self, service):
        src, dst = _sample_codes(service, n=700)
        with ClusterService.from_service(
            service, workers=2, capacity=256
        ) as cluster:
            for relay_type in RELAY_TYPE_ORDER:
                want = service.route_many(src, dst, relay_type, 3)
                got = cluster.route_many(src, dst, relay_type, 3)
                assert np.array_equal(got.relay_ids, want.relay_ids)
                assert np.array_equal(got.tier, want.tier)
                assert np.array_equal(
                    got.reduction_ms, want.reduction_ms, equal_nan=True
                )

    def test_scalar_route_matches_in_process(self, service):
        ids = sorted(service.directory.endpoint_ids())[:2]
        with ClusterService.from_service(service, workers=1) as cluster:
            assert cluster.route(ids[0], ids[1]) == service.route(
                ids[0], ids[1]
            )

    def test_from_snapshot_serves_v2_and_v3(self, service, tmp_path):
        src, dst = _sample_codes(service, n=128)
        want = service.route_many(src, dst, RelayType.COR, 3)
        v3 = tmp_path / "v3.npz"
        save_cluster_snapshot(service, v3)
        for file in (v3, io.BytesIO(_v2_bytes(service))):
            with ClusterService.from_snapshot(file, workers=2) as cluster:
                got = cluster.route_many(src, dst, RelayType.COR, 3)
                assert np.array_equal(got.relay_ids, want.relay_ids)

    def test_constructor_validation(self, service, tmp_path):
        path = tmp_path / "v3.npz"
        save_cluster_snapshot(service, path)
        for kwargs in (
            {"workers": 0},
            {"capacity": 0},
            {"k": 0},
            {"liveness_rounds": 0},
            {"spill": -1},
        ):
            with pytest.raises(ServiceError):
                ClusterService(str(path), **kwargs)

    def test_closed_cluster_rejects_queries(self, service):
        cluster = ClusterService.from_service(service, workers=1)
        cluster.close()
        cluster.close()  # idempotent
        with pytest.raises(ServiceError):
            cluster.route_many(
                np.asarray([0], np.int64), np.asarray([1], np.int64)
            )


class TestIngestSwap:
    def test_mid_swap_ingest_matches_scratch_build(
        self, small_campaign_result
    ):
        rounds = small_campaign_result.rounds
        partial = ShortcutService.from_campaign(
            small_campaign_result, rounds=rounds[:-1]
        )
        full = ShortcutService.from_campaign(small_campaign_result)
        src, dst = _sample_codes(full, n=400)
        with ClusterService.from_service(partial, workers=2) as cluster:
            before = cluster.snapshot_path
            stats = cluster.ingest_round(rounds[-1])
            assert stats["round_id"] == rounds[-1].round_index
            assert cluster.snapshot_path != before
            for relay_type in RELAY_TYPE_ORDER:
                want = full.route_many(src, dst, relay_type, 3)
                got = cluster.route_many(src, dst, relay_type, 3)
                assert np.array_equal(got.relay_ids, want.relay_ids)
                assert np.array_equal(got.tier, want.tier)

    def test_snapshot_served_cluster_can_ingest(
        self, small_campaign_result, tmp_path
    ):
        rounds = small_campaign_result.rounds
        partial = ShortcutService.from_campaign(
            small_campaign_result, rounds=rounds[:-1]
        )
        full = ShortcutService.from_campaign(small_campaign_result)
        path = tmp_path / "partial.npz"
        save_cluster_snapshot(partial, path)
        src, dst = _sample_codes(full, n=200)
        # no master attached: ingest must rebuild one from the snapshot
        with ClusterService.from_snapshot(path, workers=1) as cluster:
            cluster.ingest_round(rounds[-1])
            want = full.route_many(src, dst, RelayType.COR, 3)
            got = cluster.route_many(src, dst, RelayType.COR, 3)
            assert np.array_equal(got.relay_ids, want.relay_ids)


class TestCrossWorld:
    def test_unifies_identities_and_stays_deterministic(
        self, small_campaign_result
    ):
        results = [small_campaign_result, small_campaign_result]
        service, registry, info = cross_world_service(results)
        assert info["worlds"] == 2
        # the two worlds are byte-identical, so every relay identity
        # collapses onto its twin: the unified census equals one world's
        assert info["relays"] == info["relays_before"] // 2
        assert info["attribute_conflicts"] == 0
        again, _, _ = cross_world_service(results)
        assert (
            again.directory.block_signature()
            == service.directory.block_signature()
        )

    def test_single_world_matches_plain_compile(self, small_campaign_result):
        unified, _, info = cross_world_service([small_campaign_result])
        plain = ShortcutService.from_campaign(small_campaign_result)
        assert info["worlds"] == 1
        ids = sorted(plain.directory.endpoint_ids())
        cp = plain.encode_endpoints(ids)
        cu = unified.encode_endpoints(ids)
        rng = np.random.default_rng(5)
        ii = rng.integers(len(ids), size=256)
        jj = rng.integers(len(ids), size=256)
        want = plain.route_many(cp[ii], cp[jj], RelayType.COR, 3)
        got = unified.route_many(cu[ii], cu[jj], RelayType.COR, 3)
        assert np.array_equal(got.tier, want.tier)
        assert np.array_equal(
            got.reduction_ms, want.reduction_ms, equal_nan=True
        )

    def test_empty_input_rejected(self):
        with pytest.raises(ServiceError):
            cross_world_service([])

    def test_cluster_serves_unified_world(self, small_campaign_result):
        service, _, _ = cross_world_service(
            [small_campaign_result, small_campaign_result]
        )
        config = LoadgenConfig(num_queries=2048, batch_size=512)
        want = replay(service, config)
        with ClusterService.from_service(service, workers=2) as cluster:
            got = replay(cluster, config)
        assert got.answers_digest == want.answers_digest
