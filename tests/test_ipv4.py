"""Unit tests for repro.net.ipv4."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.net.ipv4 import IPv4Address, IPv4Prefix


class TestIPv4Address:
    def test_parse_roundtrip(self):
        assert str(IPv4Address.parse("192.0.2.7")) == "192.0.2.7"

    def test_parse_extremes(self):
        assert IPv4Address.parse("0.0.0.0").value == 0
        assert IPv4Address.parse("255.255.255.255").value == 0xFFFFFFFF

    @pytest.mark.parametrize(
        "bad",
        ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "01.2.3.4", "-1.2.3.4", ""],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)

    def test_value_range_enforced(self):
        with pytest.raises(AddressError):
            IPv4Address(-1)
        with pytest.raises(AddressError):
            IPv4Address(2**32)

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")

    def test_bit_indexing(self):
        addr = IPv4Address.parse("128.0.0.1")
        assert addr.bit(0) == 1
        assert addr.bit(31) == 1
        assert addr.bit(1) == 0

    def test_bit_out_of_range(self):
        with pytest.raises(AddressError):
            IPv4Address(0).bit(32)

    @given(st.integers(0, 2**32 - 1))
    def test_str_parse_roundtrip(self, value):
        addr = IPv4Address(value)
        assert IPv4Address.parse(str(addr)) == addr


class TestIPv4Prefix:
    def test_parse(self):
        p = IPv4Prefix.parse("10.0.0.0/8")
        assert p.length == 8
        assert p.num_addresses() == 2**24

    def test_host_bits_must_be_zero(self):
        with pytest.raises(AddressError):
            IPv4Prefix.parse("10.0.0.1/8")

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x"])
    def test_parse_rejects(self, bad):
        with pytest.raises(AddressError):
            IPv4Prefix.parse(bad)

    def test_contains(self):
        p = IPv4Prefix.parse("192.168.0.0/16")
        assert p.contains(IPv4Address.parse("192.168.5.1"))
        assert not p.contains(IPv4Address.parse("192.169.0.1"))

    def test_contains_prefix(self):
        outer = IPv4Prefix.parse("10.0.0.0/8")
        inner = IPv4Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_host_addressing(self):
        p = IPv4Prefix.parse("10.0.0.0/30")
        assert str(p.host(1)) == "10.0.0.1"
        assert str(p.host(3)) == "10.0.0.3"
        with pytest.raises(AddressError):
            p.host(4)

    def test_subnets(self):
        p = IPv4Prefix.parse("10.0.0.0/24")
        subs = p.subnets(26)
        assert len(subs) == 4
        assert str(subs[1]) == "10.0.0.64/26"
        assert all(p.contains_prefix(s) for s in subs)

    def test_subnets_shorter_rejected(self):
        with pytest.raises(AddressError):
            IPv4Prefix.parse("10.0.0.0/24").subnets(16)

    def test_zero_length_prefix_contains_everything(self):
        p = IPv4Prefix.parse("0.0.0.0/0")
        assert p.contains(IPv4Address.parse("255.255.255.255"))
        assert p.netmask_int() == 0

    def test_ordering(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("10.0.0.0/16")
        c = IPv4Prefix.parse("11.0.0.0/8")
        assert a < b < c

    @given(st.integers(0, 32))
    def test_num_addresses_matches_length(self, length):
        p = IPv4Prefix(IPv4Address(0), length)
        assert p.num_addresses() == 2 ** (32 - length)
