"""Tests for campaign result persistence."""

import json

import pytest

from repro.core.io import FORMAT_VERSION, load_result, save_result
from repro.core.types import RELAY_TYPE_ORDER
from repro.errors import AnalysisError


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, small_campaign_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(small_campaign_result, path)
        loaded = load_result(path)

        assert loaded.total_cases == small_campaign_result.total_cases
        assert loaded.total_pings == small_campaign_result.total_pings
        assert loaded.colo_filter_funnel == small_campaign_result.colo_filter_funnel
        assert loaded.verified_eyeball_tuples == (
            small_campaign_result.verified_eyeball_tuples
        )
        assert len(loaded.registry) == len(small_campaign_result.registry)

        for original, restored in zip(
            small_campaign_result.observations(), loaded.observations()
        ):
            assert restored.e1_id == original.e1_id
            assert restored.e2_id == original.e2_id
            assert restored.direct_rtt_ms == original.direct_rtt_ms
            assert restored.best_by_type == original.best_by_type
            assert restored.improving_by_type == original.improving_by_type
            assert restored.feasible_by_type == original.feasible_by_type
            assert restored.country_groups_by_type == original.country_groups_by_type

    def test_roundtrip_preserves_medians(self, small_campaign_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(small_campaign_result, path)
        loaded = load_result(path)
        for original, restored in zip(small_campaign_result.rounds, loaded.rounds):
            assert restored.direct_medians == original.direct_medians
            assert restored.relay_medians == original.relay_medians
            assert restored.endpoint_ids == original.endpoint_ids

    def test_registry_roundtrip(self, small_campaign_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(small_campaign_result, path)
        loaded = load_result(path)
        for relay_type in RELAY_TYPE_ORDER:
            originals = small_campaign_result.registry.of_type(relay_type)
            restored = loaded.registry.of_type(relay_type)
            assert [r.node_id for r in originals] == [r.node_id for r in restored]
            assert [r.facility_id for r in originals] == [
                r.facility_id for r in restored
            ]

    def test_analyses_agree_on_loaded_result(self, small_campaign_result, tmp_path):
        from repro.analysis.improvements import ImprovementAnalysis

        path = tmp_path / "result.json"
        save_result(small_campaign_result, path)
        loaded = load_result(path)
        a = ImprovementAnalysis(small_campaign_result).summary()
        b = ImprovementAnalysis(loaded).summary()
        assert a == b


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such result file"):
            load_result(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError, match="not valid JSON"):
            load_result(path)

    def test_wrong_version(self, small_campaign_result, tmp_path):
        path = tmp_path / "result.json"
        save_result(small_campaign_result, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(AnalysisError, match="format version"):
            load_result(path)
