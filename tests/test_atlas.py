"""Tests for the RIPE Atlas emulator."""

import pytest

from repro.errors import MeasurementError
from repro.measurement.nodes import NodeKind
from repro.topology.types import ASType


class TestProbeGeneration:
    def test_population_size(self, small_world):
        probes = small_world.atlas.all_probes()
        assert len(probes) > 100

    def test_probe_ids_unique(self, small_world):
        probes = small_world.atlas.all_probes()
        ids = [p.probe_id for p in probes]
        assert len(ids) == len(set(ids))

    def test_probes_hosted_in_known_ases(self, small_world):
        for probe in small_world.atlas.all_probes():
            assert small_world.graph.has_as(probe.asn)

    def test_probe_city_is_a_pop(self, small_world):
        for probe in small_world.atlas.all_probes():
            asys = small_world.graph.get_as(probe.asn)
            assert asys.has_pop_in(probe.node.city_key)

    def test_defect_classes_present(self, small_world):
        """The Sec 2.1 filters must have something to filter."""
        probes = small_world.atlas.all_probes()
        latest = small_world.config.infrastructure.latest_firmware
        assert any(p.firmware < latest for p in probes)
        assert any(not p.is_public for p in probes)
        assert any(not p.is_connected for p in probes)
        assert any(not p.is_geolocated for p in probes)
        assert any(p.stability_30d < 0.95 for p in probes)

    def test_anchors_exist_and_are_core(self, small_world):
        anchors = [p for p in small_world.atlas.all_probes() if p.is_anchor]
        assert anchors
        core = (ASType.TRANSIT_REGIONAL, ASType.TRANSIT_GLOBAL, ASType.CONTENT)
        for anchor in anchors:
            assert small_world.graph.get_as(anchor.asn).as_type in core
            assert anchor.node.kind is NodeKind.RA_ANCHOR

    def test_eyeball_probes_have_home_access(self, small_world):
        cfg = small_world.config.infrastructure
        for probe in small_world.atlas.all_probes():
            as_type = small_world.graph.get_as(probe.asn).as_type
            if as_type is ASType.EYEBALL:
                low, high = cfg.probe_access_ms
            else:
                low, high = cfg.anchor_access_ms
            assert low <= probe.node.endpoint.access_ms <= high

    def test_core_multi_probes_in_distinct_cities(self, small_world):
        by_asn: dict[int, set[str]] = {}
        for probe in small_world.atlas.all_probes():
            as_type = small_world.graph.get_as(probe.asn).as_type
            if as_type in (ASType.TRANSIT_GLOBAL, ASType.CONTENT, ASType.CLOUD,
                           ASType.TRANSIT_REGIONAL):
                by_asn.setdefault(probe.asn, set()).add(probe.node.city_key)
        multi = [cities for cities in by_asn.values() if len(cities) > 1]
        assert multi, "no core AS hosts probes at multiple PoPs"


class TestProbeQuery:
    def test_conjunctive_filters(self, small_world):
        atlas = small_world.atlas
        latest = small_world.config.infrastructure.latest_firmware
        filtered = atlas.probes(
            min_firmware=latest,
            public_only=True,
            connected_only=True,
            geolocated_only=True,
            min_stability=0.95,
        )
        assert 0 < len(filtered) < len(atlas.all_probes())
        for probe in filtered:
            assert probe.firmware >= latest
            assert probe.is_public and probe.is_connected and probe.is_geolocated
            assert probe.stability_30d >= 0.95

    def test_asn_filter(self, small_world):
        atlas = small_world.atlas
        some_asn = atlas.all_probes()[0].asn
        subset = atlas.probes(asns={some_asn})
        assert subset
        assert all(p.asn == some_asn for p in subset)

    def test_no_filters_returns_everything(self, small_world):
        assert len(small_world.atlas.probes()) == len(small_world.atlas.all_probes())


class TestBudget:
    def test_charge_accumulates(self, small_world):
        atlas = small_world.atlas
        atlas.begin_round()
        atlas.charge(100)
        atlas.charge(50)
        assert atlas.round_budget_used == 150
        atlas.begin_round()
        assert atlas.round_budget_used == 0

    def test_negative_charge_rejected(self, small_world):
        small_world.atlas.begin_round()
        with pytest.raises(MeasurementError):
            small_world.atlas.charge(-1)

    def test_budget_exceeded(self, small_world):
        atlas = small_world.atlas
        atlas.begin_round()
        with pytest.raises(MeasurementError):
            atlas.charge(atlas.ROUND_PING_BUDGET + 1)
        atlas.begin_round()
