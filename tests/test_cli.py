"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_analyze_report_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "x.json", "--report", "bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["summary"])
        assert args.seed == 11
        assert args.countries is None


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary", "--seed", "3", "--countries", "8"]) == 0
        out = capsys.readouterr().out
        assert "as_total" in out
        assert "facilities" in out

    def test_funnel(self, capsys):
        assert main(["funnel", "--seed", "3", "--countries", "8"]) == 0
        out = capsys.readouterr().out
        assert "initial" in out
        assert "rtt_geolocation" in out
        assert "verified pool" in out

    def test_campaign_and_analyze(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        code = main(
            [
                "campaign",
                "--seed", "3",
                "--countries", "8",
                "--rounds", "2",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        capsys.readouterr()

        for report in ("summary", "fig2", "fig4", "countries", "voip", "stability"):
            assert main(["analyze", str(out_file), "--report", report]) == 0
            out = capsys.readouterr().out
            assert out.strip(), f"report {report} printed nothing"

    def test_analyze_fig3_renders_chart(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        main(["campaign", "--seed", "3", "--countries", "8", "--rounds", "2",
              "--out", str(out_file)])
        capsys.readouterr()
        assert main(["analyze", str(out_file), "--report", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "top-N relays" in out

    def test_analyze_table1_needs_seed(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        main(["campaign", "--seed", "3", "--countries", "8", "--rounds", "1",
              "--out", str(out_file)])
        capsys.readouterr()
        assert main(["analyze", str(out_file), "--report", "table1"]) == 2
        assert main(
            ["analyze", str(out_file), "--report", "table1",
             "--seed", "3", "--countries", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "Facility" in out

    def test_serve_bench(self, tmp_path, capsys):
        report_file = tmp_path / "serve.json"
        code = main(
            [
                "serve-bench",
                "--seed", "3",
                "--countries", "6",
                "--rounds", "2",
                "--queries", "4000",
                "--batch-size", "512",
                "--min-qps", "1000",
                "--json-out", str(report_file),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        import json

        report = json.loads(report_file.read_text())
        assert report["ok"] is True
        assert report["snapshot_roundtrip_ok"] is True
        assert report["replay"]["queries"] == 4000
        assert sum(report["replay"]["tier_counts"].values()) == 4000
        assert "queries/s" in captured.err

    def test_serve_bench_from_stored_result(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        main(["campaign", "--seed", "3", "--countries", "6", "--rounds", "2",
              "--out", str(out_file)])
        capsys.readouterr()
        code = main(
            ["serve-bench", "--result", str(out_file), "--queries", "2000"]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "stored result" in captured.err

    def test_serve_bench_result_conflicts_with_scenario(self, tmp_path, capsys):
        code = main(
            ["serve-bench", "--result", str(tmp_path / "r.json"),
             "--scenario", "baseline"]
        )
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_missing_result_file_is_clean_error(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "none.json")]) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_analyze_full_report(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        main(["campaign", "--seed", "3", "--countries", "8", "--rounds", "2",
              "--out", str(out_file)])
        capsys.readouterr()
        assert main(
            ["analyze", str(out_file), "--report", "full",
             "--seed", "3", "--countries", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign report" in out
        assert "Facilities of the top Colo relays" in out
