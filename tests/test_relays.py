"""Tests for PLR / RAR relay selection (Sec 2.3)."""

import numpy as np

from repro.core.config import CampaignConfig
from repro.core.eyeballs import EyeballSelector
from repro.core.relays import AtlasRelaySelector, PlanetLabRelaySelector


class TestPlanetLabSelection:
    def test_per_site_bounds(self, small_world):
        cfg = CampaignConfig()
        selector = PlanetLabRelaySelector(small_world, cfg)
        sample = selector.sample(0, np.random.default_rng(0))
        per_site: dict[str, int] = {}
        for node in sample:
            per_site[node.site_id] = per_site.get(node.site_id, 0) + 1
        low, high = cfg.plr_per_site
        for count in per_site.values():
            assert low <= count <= high

    def test_only_consistent_nodes(self, small_world):
        cfg = CampaignConfig()
        selector = PlanetLabRelaySelector(small_world, cfg)
        for node in selector.sample(1, np.random.default_rng(1)):
            assert node.availability >= cfg.plr_consistency_threshold

    def test_sampled_nodes_are_up(self, small_world):
        selector = PlanetLabRelaySelector(small_world, CampaignConfig())
        up = {n.node.node_id for n in small_world.planetlab.available_nodes(2)}
        for node in selector.sample(2, np.random.default_rng(2)):
            assert node.node.node_id in up


class TestAtlasRelaySelection:
    def test_eye_relays_one_per_country(self, small_world):
        cfg = CampaignConfig()
        selector = AtlasRelaySelector(small_world, cfg)
        sample = selector.sample_eye(np.random.default_rng(0), exclude_ids=set())
        countries = [p.cc for p in sample]
        assert len(countries) == len(set(countries))

    def test_other_relays_one_per_country(self, small_world):
        selector = AtlasRelaySelector(small_world, CampaignConfig())
        sample = selector.sample_other(np.random.default_rng(1), exclude_ids=set())
        countries = [p.cc for p in sample]
        assert len(countries) == len(set(countries))

    def test_pools_disjoint(self, small_world):
        cfg = CampaignConfig()
        selector = AtlasRelaySelector(small_world, cfg)
        eyeballs = EyeballSelector(small_world, cfg)
        verified = eyeballs.verified_tuples()
        other = selector.sample_other(np.random.default_rng(2), exclude_ids=set())
        for probe in other:
            as_cc = small_world.graph.get_as(probe.asn).cc
            assert (probe.asn, as_cc) not in verified

    def test_eye_relays_are_verified(self, small_world):
        cfg = CampaignConfig()
        selector = AtlasRelaySelector(small_world, cfg)
        eyeballs = EyeballSelector(small_world, cfg)
        verified_asns = {asn for asn, _ in eyeballs.verified_tuples()}
        for probe in selector.sample_eye(np.random.default_rng(3), exclude_ids=set()):
            assert probe.asn in verified_asns

    def test_exclusion_respected(self, small_world):
        selector = AtlasRelaySelector(small_world, CampaignConfig())
        first = selector.sample_eye(np.random.default_rng(4), exclude_ids=set())
        excluded = {p.probe_id for p in first[:5]}
        second = selector.sample_eye(np.random.default_rng(4), exclude_ids=excluded)
        assert not excluded & {p.probe_id for p in second}

    def test_anchors_preferred_for_other(self, small_world):
        """The soft anchor preference must pick anchors more often than
        their share of the per-country pools."""
        selector = AtlasRelaySelector(small_world, CampaignConfig())
        pool = selector._eligible_other()
        anchor_share = sum(1 for p in pool if p.is_anchor) / len(pool)
        chosen_anchor = total = 0
        for seed in range(8):
            sample = selector.sample_other(
                np.random.default_rng(seed), exclude_ids=set()
            )
            total += len(sample)
            chosen_anchor += sum(1 for p in sample if p.is_anchor)
        if anchor_share > 0:
            assert chosen_anchor / total > anchor_share
