"""Cross-cutting property-based tests on core invariants.

These complement the per-module suites with randomized checks of the
relationships the whole methodology rests on: geometry bounds latency,
stitching can only violate *routed* triangle inequalities, funnels only
shrink, and the feasibility bound is sound by construction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.feasibility import is_feasible
from repro.core.stitching import improvement_ms, is_tiv, stitch_rtt
from repro.geo.cities import all_cities
from repro.geo.distance import min_rtt_ms, propagation_delay_ms
from repro.latency.model import Endpoint

_CITIES = all_cities()
_city_index = st.integers(0, len(_CITIES) - 1)
_rtt = st.floats(0.5, 2000.0)


class TestGeometryProperties:
    @given(_city_index, _city_index, _city_index)
    def test_feasibility_bound_is_geometric_triangle(self, i, j, k):
        """A relay exactly on the segment's cities is feasible whenever the
        direct RTT budget covers the idealised detour."""
        e1 = Endpoint("e1", 1, _CITIES[i].key, 0.0)
        e2 = Endpoint("e2", 1, _CITIES[j].key, 0.0)
        relay = Endpoint("r", 1, _CITIES[k].key, 0.0)
        detour = propagation_delay_ms(
            _CITIES[i].location, _CITIES[k].location
        ) + propagation_delay_ms(_CITIES[k].location, _CITIES[j].location)
        assert is_feasible(relay, e1, e2, 2.0 * detour + 1e-9)
        if detour > 1e-9:
            assert not is_feasible(relay, e1, e2, 2.0 * detour * 0.99)

    @given(_city_index, _city_index)
    def test_min_rtt_symmetric(self, i, j):
        a, b = _CITIES[i].location, _CITIES[j].location
        assert min_rtt_ms(a, b) == pytest.approx(min_rtt_ms(b, a))

    @given(_city_index, _city_index, _city_index)
    def test_ideal_world_has_no_tivs(self, i, j, k):
        """In the idealised speed-of-light world, stitching two geodesic
        legs can never beat the direct geodesic — TIVs exist only because
        routed paths are inflated."""
        direct = min_rtt_ms(_CITIES[i].location, _CITIES[j].location)
        leg1 = min_rtt_ms(_CITIES[i].location, _CITIES[k].location)
        leg2 = min_rtt_ms(_CITIES[k].location, _CITIES[j].location)
        if leg1 > 0 and leg2 > 0:
            assert not is_tiv(direct, stitch_rtt(leg1, leg2) - 1e-9)


class TestStitchingProperties:
    @given(_rtt, _rtt)
    def test_improvement_antisymmetry(self, direct, stitched):
        assert improvement_ms(direct, stitched) == pytest.approx(
            -improvement_ms(stitched, direct)
        )

    @given(_rtt, _rtt, _rtt)
    def test_stitch_monotone(self, a, b, c):
        assert stitch_rtt(a + c, b) > stitch_rtt(a, b)

    @given(_rtt, _rtt)
    def test_tiv_iff_positive_improvement(self, direct, stitched):
        assert is_tiv(direct, stitched) == (improvement_ms(direct, stitched) > 0)


class TestModelProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_base_rtt_respects_light_speed(self, small_world, pick):
        """No pair of real nodes can beat the idealised geodesic bound."""
        probes = small_world.atlas.all_probes()
        i = pick % len(probes)
        j = (pick * 7 + 13) % len(probes)
        if i == j:
            return
        e1, e2 = probes[i].node.endpoint, probes[j].node.endpoint
        rtt = small_world.latency.base_rtt_ms(e1, e2)
        if rtt is None:
            return
        from repro.geo.cities import city as city_of

        bound = min_rtt_ms(city_of(e1.city_key).location, city_of(e2.city_key).location)
        max_skew = small_world.latency.config.asymmetry_frac
        assert rtt >= bound * (1.0 - max_skew) - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1_000))
    def test_sampled_rtts_exceed_zero(self, small_world, pick):
        probes = small_world.atlas.all_probes()
        e1 = probes[pick % len(probes)].node.endpoint
        e2 = probes[(pick + 41) % len(probes)].node.endpoint
        if e1.node_id == e2.node_id:
            return
        rng = np.random.default_rng(pick)
        sample = small_world.latency.sample_rtt_ms(e1, e2, rng)
        if sample is not None:
            assert sample > 0


class TestCampaignInvariants:
    def test_funnel_monotone(self, small_campaign_result):
        funnel = small_campaign_result.colo_filter_funnel
        assert all(a >= b for a, b in zip(funnel, funnel[1:]))

    def test_best_relay_is_min_over_improving(self, small_campaign_result):
        from repro.core.types import RELAY_TYPE_ORDER

        for obs in small_campaign_result.observations():
            for relay_type in RELAY_TYPE_ORDER:
                entries = obs.improving_by_type.get(relay_type, ())
                if not entries:
                    continue
                best = obs.best_by_type[relay_type]
                assert best[1] <= min(
                    obs.direct_rtt_ms - gain for _, gain in entries
                ) + 1e-9

    def test_group_flags_consistent_with_improving(self, small_campaign_result):
        from repro.core.types import RELAY_TYPE_ORDER

        registry = small_campaign_result.registry
        for obs in small_campaign_result.observations():
            for relay_type in RELAY_TYPE_ORDER:
                flags = obs.country_groups_by_type.get(relay_type)
                if flags is None:
                    continue
                usable_same, improving_same, usable_diff, improving_diff = flags
                # an improving group must also be usable
                assert not (improving_same and not usable_same)
                assert not (improving_diff and not usable_diff)
                # any improving relay implies its group's improving flag
                for idx, _ in obs.improving_by_type.get(relay_type, ()):
                    cc = registry.get(idx).cc
                    if cc in (obs.e1_cc, obs.e2_cc):
                        assert improving_same
                    else:
                        assert improving_diff
