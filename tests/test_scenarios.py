"""Tests for the scenario registry and the cross-regime shape analysis."""

import numpy as np
import pytest

from repro import CampaignConfig, MeasurementCampaign, build_world
from repro.analysis.scenarios import (
    check_expectations,
    compare_scenarios,
    paper_shapes,
    scenario_metrics,
)
from repro.errors import ConfigError
from repro.scenarios import (
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    scenario_with,
)
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig

EXPECTED_PRESETS = (
    "baseline",
    "lossy",
    "spike-storm",
    "regional-eu",
    "colo-sparse",
    "voip-heavy",
    "mega-world",
    "no-probes",
    "paper-scale",
)


class TestRegistry:
    def test_all_presets_registered(self):
        assert set(EXPECTED_PRESETS) <= set(scenario_names())
        assert [s.name for s in all_scenarios()] == list(scenario_names())

    def test_get_by_name(self):
        for name in EXPECTED_PRESETS:
            scenario = get_scenario(name)
            assert scenario.name == name
            assert scenario.description

    def test_unknown_name_lists_presets(self):
        with pytest.raises(ConfigError, match="baseline"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register(Scenario(name="baseline", description="again"))

    def test_name_must_be_lowercase(self):
        with pytest.raises(ConfigError):
            Scenario(name="Shouty", description="x")

    def test_expectations_frozen(self):
        scenario = get_scenario("baseline")
        with pytest.raises(TypeError):
            scenario.expect["cases_observed"] = False

    def test_presets_distinct_configs(self):
        assert get_scenario("lossy").world.latency.base_loss_prob > (
            get_scenario("baseline").world.latency.base_loss_prob
        )
        assert get_scenario("spike-storm").world.latency.spike_prob > 0.1
        assert get_scenario("regional-eu").world.topology.continent_scope == ("EU",)
        assert get_scenario("no-probes").campaign.relay_mix == ("COR", "PLR")
        assert get_scenario("voip-heavy").campaign.pings_per_pair == 12

    def test_paper_scale_horizon(self):
        scenario = get_scenario("paper-scale")
        assert scenario.campaign.num_rounds == 45
        assert scenario.campaign.round_interval_hours == 12.0
        # sweeps/CI shrink it without touching the preset
        reduced = scenario_with(scenario, rounds=2)
        assert reduced.campaign.num_rounds == 2
        assert get_scenario("paper-scale").campaign.num_rounds == 45

    def test_service_expectations_opt_in(self):
        # like expect: absent keys are not asserted; set values are sane
        for scenario in all_scenarios():
            floor = scenario.service_expect.get("min_relay_answer_frac")
            assert floor is None or 0.0 < floor <= 1.0, scenario.name
        for name in ("baseline", "paper-scale"):
            assert "min_relay_answer_frac" in get_scenario(name).service_expect
        # degraded/sparse regimes carry no serving gate
        assert not get_scenario("lossy").service_expect
        with pytest.raises(TypeError):
            get_scenario("baseline").service_expect["min_relay_answer_frac"] = 0.0

    def test_scenario_with_overrides(self):
        scenario = scenario_with(
            get_scenario("baseline"), rounds=2, countries=8, max_countries=5
        )
        assert scenario.campaign.num_rounds == 2
        assert scenario.campaign.max_countries == 5
        assert scenario.world.topology.country_limit == 8
        # the base preset is untouched
        assert get_scenario("baseline").campaign.num_rounds != 2 or True
        assert get_scenario("baseline").world.topology.country_limit is None


class TestConfigKnobs:
    def test_continent_scope_validation(self):
        with pytest.raises(ConfigError):
            TopologyConfig(continent_scope=())
        with pytest.raises(ConfigError):
            TopologyConfig(continent_scope=("XX",))
        assert TopologyConfig(continent_scope=("EU", "NA")).continent_scope == (
            "EU",
            "NA",
        )

    def test_relay_mix_validation(self):
        with pytest.raises(ConfigError):
            CampaignConfig(relay_mix=())
        with pytest.raises(ConfigError):
            CampaignConfig(relay_mix=("COR", "COR"))
        with pytest.raises(ConfigError):
            CampaignConfig(relay_mix=("XYZ",))

    def test_scoped_world_stays_in_continent(self):
        from repro.geo.cities import city as city_of
        from repro.geo.countries import all_countries
        from repro.topology.types import ASType

        config = WorldConfig(
            topology=TopologyConfig(continent_scope=("EU",), country_limit=8)
        )
        world = build_world(seed=3, config=config)
        # every point of presence — and with it every facility, probe and
        # relay — is on a European city (AS registry ccs may be overseas
        # HQ labels for the global tier-1s)
        pop_continents = {
            city_of(key).continent
            for asn in world.graph.asns()
            for key in world.graph.get_as(asn).pop_cities
        }
        assert pop_continents == {"EU"}
        continent_of = {c.code: c.continent for c in all_countries()}
        eyeball_ccs = {
            world.graph.get_as(asn).cc
            for asn in world.topology.asns_of_type(ASType.EYEBALL)
        }
        assert {continent_of[cc] for cc in eyeball_ccs} == {"EU"}


class TestShapes:
    @pytest.fixture(scope="class")
    def table(self, small_campaign_result):
        return small_campaign_result.table

    def test_paper_shapes_keys_and_types(self, table):
        shapes = paper_shapes(table)
        assert set(shapes) == {
            "cases_observed",
            "cor_wins_majority",
            "cor_leads_relay_types",
            "cor_reduction_tens_of_ms",
            "voip_no_worse_with_cor",
            "rar_relays_observed",
        }
        assert all(isinstance(v, bool) for v in shapes.values())
        assert shapes["cases_observed"] is True

    def test_scenario_metrics_align_with_shapes(self, table):
        metrics = scenario_metrics(table)
        shapes = paper_shapes(table)
        assert metrics["total_cases"] == table.num_cases
        assert shapes["cor_wins_majority"] == (metrics["win_rate_COR"] > 0.5)
        assert 0.0 <= metrics["voip_poor_fraction_cor"] <= 1.0
        assert (
            metrics["voip_poor_fraction_cor"] <= metrics["voip_poor_fraction_direct"]
        ) == shapes["voip_no_worse_with_cor"]

    def test_empty_table_shapes(self):
        from repro.core.table import ObservationTable, TablePools

        empty = ObservationTable.empty(TablePools.fresh())
        shapes = paper_shapes(empty)
        assert shapes["cases_observed"] is False
        assert shapes["cor_wins_majority"] is False
        assert shapes["voip_no_worse_with_cor"] is True

    def test_check_expectations(self):
        shapes = {"a": True, "b": False}
        assert check_expectations(shapes, {"a": True})["ok"]
        verdict = check_expectations(shapes, {"a": True, "b": True, "c": True})
        assert not verdict["ok"]
        assert {f["shape"] for f in verdict["failed"]} == {"b", "c"}

    def test_compare_scenarios_pivot(self):
        pivot = compare_scenarios(
            {"x": {"m": 1, "n": 2}, "y": {"m": 3}}
        )
        assert pivot == {"m": {"x": 1, "y": 3}, "n": {"x": 2, "y": None}}


class TestRelayMixCampaign:
    def test_no_probe_relays_observed(self, small_world):
        campaign = MeasurementCampaign(
            small_world,
            CampaignConfig(num_rounds=1, relay_mix=("COR", "PLR")),
        )
        result = campaign.run()
        table = result.table
        from repro.core.types import RELAY_TYPE_ORDER, RelayType

        for relay_type in (RelayType.RAR_OTHER, RelayType.RAR_EYE):
            code = RELAY_TYPE_ORDER.index(relay_type)
            assert np.all(np.isnan(table.best_stitched[code]))
            assert np.all(table.feasible[code] == 0)
        cor = RELAY_TYPE_ORDER.index(RelayType.COR)
        assert np.any(~np.isnan(table.best_stitched[cor]))
