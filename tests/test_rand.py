"""Unit tests for repro.util.rand."""

import pytest

from repro.util.rand import SeedSequenceFactory, derive_rng


class TestSeedSequenceFactory:
    def test_same_seed_same_stream(self):
        a = SeedSequenceFactory(42).rng("x").random(5)
        b = SeedSequenceFactory(42).rng("x").random(5)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        f = SeedSequenceFactory(42)
        a = f.rng("alpha").random(5)
        b = f.rng("beta").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = SeedSequenceFactory(1).rng("x").random(5)
        b = SeedSequenceFactory(2).rng("x").random(5)
        assert list(a) != list(b)

    def test_order_independence(self):
        f1 = SeedSequenceFactory(9)
        first_then_second = (f1.rng("first").random(3), f1.rng("second").random(3))
        f2 = SeedSequenceFactory(9)
        second_then_first = (f2.rng("second").random(3), f2.rng("first").random(3))
        assert list(first_then_second[0]) == list(second_then_first[1])
        assert list(first_then_second[1]) == list(second_then_first[0])

    def test_child_streams_independent(self):
        f = SeedSequenceFactory(5)
        child = f.child("sub")
        assert list(f.rng("x").random(3)) != list(child.rng("x").random(3))

    def test_child_deterministic(self):
        a = SeedSequenceFactory(5).child("sub").rng("x").random(3)
        b = SeedSequenceFactory(5).child("sub").rng("x").random(3)
        assert list(a) == list(b)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("42")  # type: ignore[arg-type]

    def test_seed_property(self):
        assert SeedSequenceFactory(17).seed == 17


def test_derive_rng_matches_factory():
    assert list(derive_rng(3, "name").random(4)) == list(
        SeedSequenceFactory(3).rng("name").random(4)
    )
