"""Unit tests for the longest-prefix-match trie."""

from hypothesis import given, strategies as st

from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.trie import PrefixTrie


def _p(text: str) -> IPv4Prefix:
    return IPv4Prefix.parse(text)


def _a(text: str) -> IPv4Address:
    return IPv4Address.parse(text)


class TestPrefixTrie:
    def test_empty_lookup(self):
        trie: PrefixTrie[int] = PrefixTrie()
        assert trie.longest_match(_a("1.2.3.4")) is None
        assert len(trie) == 0

    def test_exact_match(self):
        trie: PrefixTrie[int] = PrefixTrie()
        trie.insert(_p("10.0.0.0/8"), 100)
        assert trie.exact(_p("10.0.0.0/8")) == [100]
        assert trie.exact(_p("10.0.0.0/16")) is None

    def test_longest_match_prefers_specific(self):
        trie: PrefixTrie[int] = PrefixTrie()
        trie.insert(_p("10.0.0.0/8"), 1)
        trie.insert(_p("10.1.0.0/16"), 2)
        prefix, values = trie.longest_match(_a("10.1.2.3"))
        assert str(prefix) == "10.1.0.0/16"
        assert values == [2]
        prefix, values = trie.longest_match(_a("10.2.2.3"))
        assert str(prefix) == "10.0.0.0/8"
        assert values == [1]

    def test_no_match_outside(self):
        trie: PrefixTrie[int] = PrefixTrie()
        trie.insert(_p("10.0.0.0/8"), 1)
        assert trie.longest_match(_a("11.0.0.1")) is None

    def test_moas_accumulates(self):
        trie: PrefixTrie[int] = PrefixTrie()
        trie.insert(_p("10.0.0.0/8"), 1)
        trie.insert(_p("10.0.0.0/8"), 2)
        assert trie.exact(_p("10.0.0.0/8")) == [1, 2]
        assert len(trie) == 1  # still one distinct prefix

    def test_default_route(self):
        trie: PrefixTrie[int] = PrefixTrie()
        trie.insert(_p("0.0.0.0/0"), 99)
        prefix, values = trie.longest_match(_a("203.0.113.9"))
        assert prefix.length == 0
        assert values == [99]

    def test_host_route(self):
        trie: PrefixTrie[int] = PrefixTrie()
        trie.insert(_p("192.0.2.1/32"), 7)
        assert trie.longest_match(_a("192.0.2.1"))[1] == [7]
        assert trie.longest_match(_a("192.0.2.2")) is None

    def test_all_matches_shortest_first(self):
        trie: PrefixTrie[int] = PrefixTrie()
        trie.insert(_p("0.0.0.0/0"), 0)
        trie.insert(_p("10.0.0.0/8"), 1)
        trie.insert(_p("10.1.0.0/16"), 2)
        matches = trie.all_matches(_a("10.1.5.5"))
        assert [p.length for p, _ in matches] == [0, 8, 16]

    def test_items_iterates_everything(self):
        trie: PrefixTrie[int] = PrefixTrie()
        inserted = {_p("10.0.0.0/8"), _p("172.16.0.0/12"), _p("192.168.0.0/16")}
        for i, prefix in enumerate(sorted(inserted)):
            trie.insert(prefix, i)
        assert {p for p, _ in trie.items()} == inserted

    def test_returned_values_are_copies(self):
        trie: PrefixTrie[int] = PrefixTrie()
        trie.insert(_p("10.0.0.0/8"), 1)
        _, values = trie.longest_match(_a("10.0.0.1"))
        values.append(999)
        assert trie.exact(_p("10.0.0.0/8")) == [1]

    @given(
        st.lists(
            st.tuples(st.integers(0, 2**32 - 1), st.integers(8, 28)),
            min_size=1,
            max_size=30,
        ),
        st.integers(0, 2**32 - 1),
    )
    def test_longest_match_agrees_with_linear_scan(self, raw, probe_value):
        trie: PrefixTrie[int] = PrefixTrie()
        prefixes = []
        for value, length in raw:
            network = value & (((1 << length) - 1) << (32 - length)) & 0xFFFFFFFF
            prefix = IPv4Prefix(IPv4Address(network), length)
            trie.insert(prefix, length)
            prefixes.append(prefix)
        probe = IPv4Address(probe_value)
        covering = [p for p in prefixes if p.contains(probe)]
        result = trie.longest_match(probe)
        if not covering:
            assert result is None
        else:
            assert result is not None
            assert result[0].length == max(p.length for p in covering)
