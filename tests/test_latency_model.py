"""Tests for the RTT model, ping engine and backbone stretch."""

import numpy as np
import pytest
from repro.errors import ConfigError, MeasurementError
from repro.latency.backbone import STRETCH_RANGES, BackboneStretch
from repro.latency.model import Endpoint, LatencyConfig
from repro.latency.ping import PingEngine
from repro.topology.types import ASType


def _endpoint(world, index: int = 0, access: float = 2.0) -> Endpoint:
    asys = world.graph.get_as(world.graph.asns()[index])
    return Endpoint(
        node_id=f"test-ep-{index}",
        asn=asys.asn,
        city_key=asys.primary_city,
        access_ms=access,
        loss_prob=0.0,
    )


class TestEndpointValidation:
    def test_negative_access_rejected(self):
        with pytest.raises(ConfigError):
            Endpoint("x", 1, "London/GB", access_ms=-1.0)

    def test_loss_prob_range(self):
        with pytest.raises(ConfigError):
            Endpoint("x", 1, "London/GB", access_ms=0.0, loss_prob=1.0)


class TestLatencyConfigValidation:
    def test_defaults_valid(self):
        LatencyConfig()

    def test_bad_spike_range(self):
        with pytest.raises(ConfigError):
            LatencyConfig(spike_range_ms=(100.0, 10.0))

    def test_bad_asymmetry(self):
        with pytest.raises(ConfigError):
            LatencyConfig(asymmetry_frac=0.6)


class TestBaseRtt:
    def test_deterministic(self, small_world):
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        a = small_world.latency.base_rtt_ms(e1, e2)
        b = small_world.latency.base_rtt_ms(e1, e2)
        assert a == b
        assert a is not None and a > 0

    def test_includes_access_delay(self, small_world):
        # same node_id on both endpoints keeps the pair skew identical, so
        # the difference isolates the access term exactly
        base = _endpoint(small_world, 0, access=0.0)
        slow = Endpoint(base.node_id, base.asn, base.city_key, access_ms=10.0)
        other = _endpoint(small_world, 50)
        rtt_slow = small_world.latency.base_rtt_ms(slow, other)
        rtt_fast = small_world.latency.base_rtt_ms(base, other)
        # 10 ms one-way access appears twice in the RTT (modulo skew scaling)
        assert rtt_slow - rtt_fast == pytest.approx(20.0, rel=0.05)

    def test_asymmetry_is_small(self, small_world):
        # the wire RTT is direction-independent; only the per-direction
        # measurement skew (max 4.5% each way) differs
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        fwd = small_world.latency.base_rtt_ms(e1, e2)
        rev = small_world.latency.base_rtt_ms(e2, e1)
        assert fwd != rev  # direction-specific skew exists
        max_skew = small_world.latency.config.asymmetry_frac
        assert abs(fwd - rev) / min(fwd, rev) < 2.5 * max_skew

    def test_symmetry_distribution_matches_paper(self, small_world):
        # ~80% of pairs should agree within 5% across many endpoint pairs
        asns = small_world.graph.asns()
        model = small_world.latency
        agree = total = 0
        for i in range(0, 60, 3):
            for j in range(1, 60, 7):
                if i == j:
                    continue
                e1 = _endpoint(small_world, i)
                e2 = _endpoint(small_world, j)
                fwd = model.base_rtt_ms(e1, e2)
                rev = model.base_rtt_ms(e2, e1)
                if fwd is None or rev is None:
                    continue
                total += 1
                if abs(fwd - rev) / min(fwd, rev) <= 0.05:
                    agree += 1
        assert total > 50
        assert 0.6 < agree / total <= 1.0

    def test_geography_lower_bound(self, small_world):
        from repro.geo.cities import city as city_of
        from repro.geo.distance import min_rtt_ms

        e1, e2 = _endpoint(small_world, 10), _endpoint(small_world, 60)
        rtt = small_world.latency.base_rtt_ms(e1, e2)
        bound = min_rtt_ms(city_of(e1.city_key).location, city_of(e2.city_key).location)
        assert rtt >= bound * 0.98  # asymmetry can shave up to 2%

    def test_path_cache_effective(self, small_world):
        model = small_world.latency
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        first = model.path_one_way_ms(e1.asn, e1.city_key, e2.asn, e2.city_key)
        second = model.path_one_way_ms(e1.asn, e1.city_key, e2.asn, e2.city_key)
        assert first == second


class TestSampledRtt:
    def test_jitter_varies(self, small_world):
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        rng = np.random.default_rng(1)
        samples = [small_world.latency.sample_rtt_ms(e1, e2, rng) for _ in range(20)]
        valid = [s for s in samples if s is not None]
        assert len(set(valid)) > 1

    def test_samples_near_base(self, small_world):
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        base = small_world.latency.base_rtt_ms(e1, e2)
        rng = np.random.default_rng(2)
        valid = [
            s
            for s in (small_world.latency.sample_rtt_ms(e1, e2, rng) for _ in range(50))
            if s is not None
        ]
        med = sorted(valid)[len(valid) // 2]
        assert med == pytest.approx(base, rel=0.15)

    def test_lossy_endpoint_drops_packets(self, small_world):
        e1 = _endpoint(small_world, 0)
        e2 = _endpoint(small_world, 50)
        lossy = Endpoint("lossy", e2.asn, e2.city_key, access_ms=1.0, loss_prob=0.95)
        rng = np.random.default_rng(3)
        samples = [small_world.latency.sample_rtt_ms(e1, lossy, rng) for _ in range(40)]
        assert samples.count(None) > 20

    def test_loss_probability_composes(self, small_world):
        e1 = Endpoint("a", 1000, "London/GB", 0.0, loss_prob=0.1)
        e2 = Endpoint("b", 1000, "London/GB", 0.0, loss_prob=0.2)
        p = small_world.latency.loss_probability(e1, e2)
        base = small_world.latency.config.base_loss_prob
        assert p == pytest.approx(1 - (1 - base) * 0.9 * 0.8)


class TestPingEngine:
    def test_batch_size(self, small_world):
        engine = PingEngine(small_world.latency)
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        result = engine.ping(e1, e2, np.random.default_rng(4), count=6)
        assert result.num_sent == 6
        assert result.num_received <= 6

    def test_median_requires_min_valid(self, small_world):
        engine = PingEngine(small_world.latency)
        e1 = _endpoint(small_world, 0)
        dead = Endpoint("dead", e1.asn, e1.city_key, access_ms=0.1, loss_prob=0.9999)
        result = engine.ping(e1, dead, np.random.default_rng(5), count=6)
        assert result.median_rtt(min_valid=3) is None

    def test_zero_count_rejected(self, small_world):
        engine = PingEngine(small_world.latency)
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        with pytest.raises(MeasurementError):
            engine.ping(e1, e2, np.random.default_rng(6), count=0)

    def test_is_responsive(self, small_world):
        engine = PingEngine(small_world.latency)
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        assert engine.is_responsive(e1, e2, np.random.default_rng(7))

    def test_median_robust_to_spikes(self, small_world):
        # force frequent spikes; the median of 6 should stay near base
        from repro.latency.model import LatencyModel

        spiky = LatencyModel(
            small_world.routing,
            small_world.walker,
            LatencyConfig(spike_prob=0.3, spike_range_ms=(200.0, 400.0)),
        )
        engine = PingEngine(spiky)
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        base = spiky.base_rtt_ms(e1, e2)
        rng = np.random.default_rng(8)
        medians = []
        # with spike_prob 0.3 the expected fraction of 6-packet batches whose
        # median stays under 1.5x base is ~0.74 (>= 3 spiked packets drag the
        # median up); sample enough batches to assert well clear of noise
        for _ in range(60):
            med = engine.ping(e1, e2, rng, count=6).median_rtt()
            if med is not None:
                medians.append(med)
        within = sum(1 for m in medians if m < base * 1.5)
        assert within / len(medians) > 0.6


class TestBackboneStretch:
    def test_within_role_range(self, small_world):
        stretch = BackboneStretch(small_world.graph)
        for asys in small_world.graph:
            low, high = STRETCH_RANGES[asys.as_type]
            assert low <= stretch.factor(asys.asn) <= high

    def test_deterministic(self, small_world):
        a = BackboneStretch(small_world.graph)
        b = BackboneStretch(small_world.graph)
        asns = small_world.graph.asns()[:20]
        assert [a.factor(x) for x in asns] == [b.factor(x) for x in asns]

    def test_content_beats_eyeball_on_average(self, small_world):
        stretch = BackboneStretch(small_world.graph)
        topo = small_world.topology
        content = [stretch.factor(a) for a in topo.asns_of_type(ASType.CONTENT)]
        eyeball = [stretch.factor(a) for a in topo.asns_of_type(ASType.EYEBALL)]
        assert sum(content) / len(content) < sum(eyeball) / len(eyeball)


class TestPairGrid:
    """The grid-indexed base/skew path must be bit-identical to the
    per-leg pair-cache path it replaces."""

    @pytest.fixture(scope="class")
    def grid_endpoints(self, small_world):
        probes = small_world.atlas.all_probes()[:12]
        return [p.node.endpoint for p in probes]

    def test_entries_match_pair_cache(self, small_world, grid_endpoints):
        model = small_world.latency
        rows, cols = grid_endpoints[:6], grid_endpoints[6:]
        grid = model.pair_grid(rows, cols)
        pairs = [(s, d) for s in rows for d in cols]
        entries = model._pair_entries(pairs)
        base = np.array([e[0] for e in entries]).reshape(grid.shape)
        loss = np.array([e[1] for e in entries]).reshape(grid.shape)
        assert np.array_equal(grid.base, base, equal_nan=True)
        assert np.array_equal(grid.loss, loss)

    def test_entries_match_with_attachment_grid(self, grid_endpoints, small_world):
        small_world.ensure_routing_fabric()
        model = small_world.latency
        rows, cols = grid_endpoints[:6], grid_endpoints[6:]
        grid = model.pair_grid(rows, cols)
        for i, s in enumerate(rows):
            for j, d in enumerate(cols):
                scalar = model.base_rtt_ms(s, d)
                cell = grid.base[i, j]
                if scalar is None:
                    assert cell != cell
                else:
                    assert cell == scalar
                assert grid.loss[i, j] == model.loss_probability(s, d)

    def test_skew_memo_warm_gather(self, small_world, grid_endpoints):
        model = small_world.latency
        rows, cols = grid_endpoints[:6], grid_endpoints[6:]
        first = model.pair_grid(rows, cols)
        again = model.pair_grid(rows, cols)
        assert np.array_equal(first.base, again.base, equal_nan=True)
        assert np.array_equal(first.loss, again.loss)

    def test_sample_rtt_entries_matches_matrix(self, small_world, grid_endpoints):
        model = small_world.latency
        rows, cols = grid_endpoints[:6], grid_endpoints[6:]
        pairs = [(s, d) for s in rows for d in cols]
        grid = model.pair_grid(rows, cols)
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        via_pairs = model.sample_rtt_matrix(pairs, rng_a, count=4)
        via_entries = model.sample_rtt_entries(
            grid.base.reshape(-1), grid.loss.reshape(-1), rng_b, count=4
        )
        assert np.array_equal(via_pairs, via_entries, equal_nan=True)

    def test_median_from_entries_matches_median_many(
        self, small_world, grid_endpoints
    ):
        engine = PingEngine(small_world.latency)
        rows, cols = grid_endpoints[:6], grid_endpoints[6:]
        pairs = [(s, d) for s in rows for d in cols]
        grid = small_world.latency.pair_grid(rows, cols)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        via_pairs = engine.median_many(pairs, rng_a)
        via_entries = engine.median_from_entries(
            grid.base.reshape(-1), grid.loss.reshape(-1), rng_b
        )
        assert np.array_equal(via_pairs, via_entries, equal_nan=True)

    def test_empty_grid(self, small_world):
        grid = small_world.latency.pair_grid([], [])
        assert grid.shape == (0, 0)
        out = small_world.latency.sample_rtt_entries(
            grid.base.reshape(-1), grid.loss.reshape(-1),
            np.random.default_rng(0), count=3,
        )
        assert out.shape == (0, 3)
