"""Tests for AS-graph analytics (customer cones, degrees, report)."""

import pytest

from repro.net.ipv4 import IPv4Prefix
from repro.topology.graph import ASGraph
from repro.topology.stats import (
    cone_sizes,
    customer_cone,
    degree_distribution,
    relationship_mix,
    topology_report,
)
from repro.topology.types import ASType, AutonomousSystem


def _graph():
    g = ASGraph()
    for asn in range(1, 7):
        g.add_as(
            AutonomousSystem(
                asn=asn,
                name=f"AS{asn}",
                as_type=ASType.EYEBALL,
                cc="DE",
                pop_cities=("Frankfurt/DE",),
                prefixes=(IPv4Prefix.parse(f"10.{asn}.0.0/16"),),
            )
        )
    city = ["Frankfurt/DE"]
    # 1 is tier-1-ish: customers 2 and 3; 2's customer is 4; 3's customers
    # are 4 (multihomed) and 5; 6 peers with 1.
    g.add_c2p(2, 1, city)
    g.add_c2p(3, 1, city)
    g.add_c2p(4, 2, city)
    g.add_c2p(4, 3, city)
    g.add_c2p(5, 3, city)
    g.add_p2p(6, 1, city)
    return g


class TestCustomerCone:
    def test_leaf_cone_is_self(self):
        g = _graph()
        assert customer_cone(g, 4) == {4}
        assert customer_cone(g, 5) == {5}

    def test_mid_tier_cone(self):
        g = _graph()
        assert customer_cone(g, 3) == {3, 4, 5}

    def test_top_cone_counts_multihomed_once(self):
        g = _graph()
        assert customer_cone(g, 1) == {1, 2, 3, 4, 5}

    def test_peering_does_not_extend_cone(self):
        g = _graph()
        assert 1 not in customer_cone(g, 6)

    def test_cone_sizes_match_per_as_computation(self):
        g = _graph()
        sizes = cone_sizes(g)
        for asn in g.asns():
            assert sizes[asn] == len(customer_cone(g, asn)), f"AS{asn}"

    def test_cone_sizes_on_generated_world(self, small_world):
        sizes = cone_sizes(small_world.graph)
        assert set(sizes) == set(small_world.graph.asns())
        # spot-check a few ASes against the direct computation
        for asn in small_world.graph.asns()[::37]:
            assert sizes[asn] == len(customer_cone(small_world.graph, asn))


class TestStructuralStats:
    def test_degree_distribution_sums_to_n(self):
        g = _graph()
        dist = degree_distribution(g)
        assert sum(dist.values()) == len(g)

    def test_relationship_mix(self):
        g = _graph()
        assert relationship_mix(g) == {"c2p": 5, "p2p": 1}

    def test_report_keys(self):
        report = topology_report(_graph())
        assert report["num_ases"] == 6.0
        assert 0.0 <= report["peering_edge_frac"] <= 1.0
        assert report["max_cone_frac"] == pytest.approx(5 / 6)

    def test_generated_world_shape(self, small_world):
        """The generated Internet must look like the Internet: tier-1 cones
        cover most ASes, eyeball cones are tiny, peering is plentiful."""
        report = topology_report(small_world.graph)
        assert report["max_cone_frac"] > 0.3
        assert report["median_cone_size"] == 1.0  # most ASes are stubs
        assert report["peering_edge_frac"] > 0.3  # flattened Internet
