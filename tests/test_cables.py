"""Tests for the submarine cable landing-point substrate and analysis."""

import pytest

from repro.analysis.cables import CableProximityAnalysis
from repro.errors import AnalysisError
from repro.geo.cables import LandingPointIndex, all_landing_points
from repro.geo.coords import GeoPoint


class TestLandingPoints:
    def test_table_nonempty_and_global(self):
        points = all_landing_points()
        assert len(points) >= 25
        continents = set()
        from repro.geo.countries import continent_of

        for lp in points:
            continents.add(continent_of(lp.cc))
        assert continents == {"EU", "NA", "SA", "AS", "AF", "OC"}

    def test_nearest_is_sensible(self):
        index = LandingPointIndex()
        # a point just off Marseille must resolve to Marseille
        nearest, dist = index.nearest(GeoPoint(43.0, 5.0))
        assert nearest.name == "Marseille"
        assert dist < 200

    def test_inland_location_far(self):
        index = LandingPointIndex()
        # central Kazakhstan is far from any landing station
        assert index.distance_km(GeoPoint(48.0, 67.0)) > 1000

    def test_distance_zero_at_station(self):
        index = LandingPointIndex()
        station = all_landing_points()[0]
        assert index.distance_km(station.location) == pytest.approx(0.0)


class TestCableProximityAnalysis:
    def test_report_shape(self, small_campaign_result):
        analysis = CableProximityAnalysis(small_campaign_result, threshold_km=700.0)
        report = analysis.report()
        assert report.near_pairs > 0 and report.far_pairs > 0
        assert 0.0 <= report.near_improved_rate <= 1.0
        assert 0.0 <= report.far_improved_rate <= 1.0
        assert report.near_direct_median_ms > 0
        assert report.far_direct_median_ms > 0

    def test_bad_threshold(self, small_campaign_result):
        with pytest.raises(AnalysisError):
            CableProximityAnalysis(small_campaign_result, threshold_km=0.0)

    def test_near_endpoints_see_lower_direct_latency(self, small_campaign_result):
        """Coastal-hub endpoints should enjoy shorter intercontinental
        paths than deep-inland ones — the effect the paper wants to probe."""
        analysis = CableProximityAnalysis(small_campaign_result, threshold_km=700.0)
        report = analysis.report()
        assert report.near_direct_median_ms <= report.far_direct_median_ms * 1.3
