"""Unit tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.util.stats import (
    cdf_at,
    cdf_points,
    coefficient_of_variation,
    median,
    percentile,
    quantiles,
)


class TestMedian:
    def test_odd_length(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_length_averages_middle(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_single_value(self):
        assert median([7.5]) == 7.5

    def test_unsorted_input(self):
        assert median([9.0, 1.0, 5.0, 3.0, 7.0]) == 5.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            median([])

    def test_does_not_mutate_input(self):
        values = [3.0, 1.0, 2.0]
        median(values)
        assert values == [3.0, 1.0, 2.0]

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
    def test_matches_numpy(self, values):
        assert median(values) == pytest.approx(float(np.median(values)))


class TestPercentile:
    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_out_of_range_raises(self):
        with pytest.raises(AnalysisError):
            percentile([1.0], 101)
        with pytest.raises(AnalysisError):
            percentile([1.0], -1)

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            percentile([], 50)

    @given(
        st.lists(st.floats(0.1, 1e6), min_size=1, max_size=40),
        st.floats(0, 100),
    )
    def test_matches_numpy_linear(self, values, q):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)), rel=1e-9, abs=1e-9
        )


class TestQuantiles:
    def test_multiple_at_once(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert quantiles(values, [0, 50, 100]) == [1.0, 3.0, 5.0]

    def test_consistent_with_percentile(self):
        values = [5.0, 1.0, 9.0, 3.0]
        qs = [10.0, 50.0, 90.0]
        assert quantiles(values, qs) == [percentile(values, q) for q in qs]

    def test_bad_quantile_raises(self):
        with pytest.raises(AnalysisError):
            quantiles([1.0], [150.0])


class TestCdf:
    def test_points_are_monotone(self):
        points = cdf_points([3.0, 1.0, 2.0, 2.0])
        xs = [x for x, _ in points]
        fs = [f for _, f in points]
        assert xs == sorted(xs)
        assert fs == sorted(fs)
        assert fs[-1] == 1.0

    def test_duplicates_collapse(self):
        points = cdf_points([1.0, 1.0, 2.0])
        assert points == [(1.0, 2 / 3), (2.0, 1.0)]

    def test_cdf_at(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, 2.5) == 0.5
        assert cdf_at(values, 0.0) == 0.0
        assert cdf_at(values, 4.0) == 1.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            cdf_points([])
        with pytest.raises(AnalysisError):
            cdf_at([], 1.0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60))
    def test_last_point_is_max_and_one(self, values):
        points = cdf_points(values)
        assert points[-1][0] == max(values)
        assert points[-1][1] == pytest.approx(1.0)


class TestCoefficientOfVariation:
    def test_constant_series_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        # values 1,3 -> mean 2, population stdev 1 -> CV 0.5
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_needs_two_values(self):
        with pytest.raises(AnalysisError):
            coefficient_of_variation([1.0])

    def test_zero_mean_raises(self):
        with pytest.raises(AnalysisError):
            coefficient_of_variation([-1.0, 1.0])

    @given(st.lists(st.floats(1.0, 1e4), min_size=2, max_size=30))
    def test_non_negative_and_scale_invariant(self, values):
        cv = coefficient_of_variation(values)
        assert cv >= 0.0
        scaled = [v * 3.0 for v in values]
        assert coefficient_of_variation(scaled) == pytest.approx(cv, rel=1e-9, abs=1e-12)
