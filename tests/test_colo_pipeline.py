"""Tests for the Sec 2.2 five-filter Colo relay pipeline."""

import numpy as np
import pytest

from repro.core.colo import ColoRelayPipeline
from repro.core.config import CampaignConfig


@pytest.fixture(scope="module")
def pipeline(small_world):
    return ColoRelayPipeline(small_world, CampaignConfig())


class TestFunnel:
    def test_monotone_decreasing(self, pipeline):
        funnel = pipeline.report().funnel()
        assert funnel == sorted(funnel, reverse=True)

    def test_every_stage_filters_something(self, pipeline):
        report = pipeline.report()
        funnel = report.funnel()
        drops = [a - b for a, b in zip(funnel, funnel[1:])]
        # stage 4 (active facility presence) may legitimately drop little,
        # as in the paper (725 -> 725); all others must bite
        assert drops[0] > 0, "single-facility filter dropped nothing"
        assert drops[1] > 0, "pingability filter dropped nothing"
        assert drops[2] > 0, "ownership filter dropped nothing"
        assert drops[4] > 0, "geolocation filter dropped nothing"

    def test_survivor_pool_usable(self, pipeline):
        relays = pipeline.verified_relays()
        assert len(relays) >= 20
        assert len(pipeline.facilities_covered()) >= 5

    def test_stage_names(self, pipeline):
        report = pipeline.report()
        assert [name for name, _ in report.stages] == list(
            ColoRelayPipeline.STAGE_NAMES
        )
        assert "initial=" in str(report)

    def test_cached_run(self, pipeline):
        a, report_a = pipeline.run()
        b, report_b = pipeline.run()
        assert [r.node.node_id for r in a] == [r.node.node_id for r in b]
        assert report_a is report_b

    def test_batched_geolocation_parity(self, small_world):
        """Batch-resolving the geolocation legs must not change anything:
        same RNG consumption, same verified pool, same funnel."""
        batched, report_batched = ColoRelayPipeline(
            small_world, CampaignConfig()
        ).run()
        scalar, report_scalar = ColoRelayPipeline(
            small_world, CampaignConfig(), batch_geolocation=False
        ).run()
        assert report_batched.funnel() == report_scalar.funnel()
        assert [r.node.node_id for r in batched] == [
            r.node.node_id for r in scalar
        ]
        assert [r.facility_id for r in batched] == [
            r.facility_id for r in scalar
        ]


class TestFilterCorrectness:
    def test_survivors_single_facility(self, pipeline):
        for relay in pipeline.verified_relays():
            assert relay.record.is_single_facility

    def test_survivors_in_open_facilities(self, pipeline, small_world):
        for relay in pipeline.verified_relays():
            assert small_world.peeringdb.has_facility(relay.facility_id)

    def test_survivors_alive(self, pipeline, small_world):
        for relay in pipeline.verified_relays():
            interface = small_world.colo_pool.by_node_id(relay.node.node_id)
            assert not interface.is_dead

    def test_survivors_ownership_consistent(self, pipeline, small_world):
        for relay in pipeline.verified_relays():
            origins = set(small_world.prefix2as.origins(relay.record.ip))
            assert origins == {relay.record.recorded_asn}

    def test_survivors_still_members(self, pipeline, small_world):
        for relay in pipeline.verified_relays():
            assert small_world.peeringdb.is_present(
                relay.record.recorded_asn, relay.facility_id
            )

    def test_survivors_not_relocated(self, pipeline, small_world):
        """RTT geolocation must catch every relocated interface."""
        for relay in pipeline.verified_relays():
            interface = small_world.colo_pool.by_node_id(relay.node.node_id)
            assert not interface.relocated

    def test_survivor_cities_have_lgs(self, pipeline, small_world):
        covered = set(small_world.periscope.covered_cities())
        for relay in pipeline.verified_relays():
            assert small_world.peeringdb.city_of(relay.facility_id) in covered


class TestSampling:
    def test_per_facility_bounds(self, pipeline):
        rng = np.random.default_rng(0)
        sample = pipeline.sample_relays(rng)
        per_facility: dict[int, int] = {}
        for relay in sample:
            per_facility[relay.facility_id] = per_facility.get(relay.facility_id, 0) + 1
        low, high = CampaignConfig().colo_ips_per_facility
        for count in per_facility.values():
            assert low <= count <= high

    def test_covers_all_facilities(self, pipeline):
        rng = np.random.default_rng(1)
        sample = pipeline.sample_relays(rng)
        assert {r.facility_id for r in sample} == pipeline.facilities_covered()

    def test_samples_vary(self, pipeline):
        a = [r.node.node_id for r in pipeline.sample_relays(np.random.default_rng(2))]
        b = [r.node.node_id for r in pipeline.sample_relays(np.random.default_rng(3))]
        assert a != b
