"""Tests for the PlanetLab emulator."""

from repro.measurement.nodes import NodeKind
from repro.topology.types import ASType


class TestSites:
    def test_sites_exist(self, small_world):
        assert len(small_world.planetlab.sites()) > 3

    def test_sites_at_research_ases(self, small_world):
        for site in small_world.planetlab.sites():
            assert small_world.graph.get_as(site.asn).as_type is ASType.RESEARCH

    def test_sites_not_at_backbones(self, small_world):
        for site in small_world.planetlab.sites():
            assert "Backbone" not in small_world.graph.get_as(site.asn).name

    def test_nodes_belong_to_their_site(self, small_world):
        for site in small_world.planetlab.sites():
            for node in site.nodes:
                assert node.site_id == site.site_id
                assert node.node.kind is NodeKind.PLANETLAB
                assert node.node.asn == site.asn

    def test_node_count_in_configured_range(self, small_world):
        low, high = small_world.config.infrastructure.nodes_per_site
        for site in small_world.planetlab.sites():
            assert low <= len(site.nodes) <= high

    def test_availability_is_probability(self, small_world):
        for node in small_world.planetlab.all_nodes():
            assert 0.0 <= node.availability <= 1.0


class TestAvailability:
    def test_round_sampling_deterministic(self, small_world):
        a = {n.node.node_id for n in small_world.planetlab.available_nodes(3)}
        b = {n.node.node_id for n in small_world.planetlab.available_nodes(3)}
        assert a == b

    def test_rounds_differ(self, small_world):
        rounds = [
            frozenset(n.node.node_id for n in small_world.planetlab.available_nodes(r))
            for r in range(6)
        ]
        assert len(set(rounds)) > 1

    def test_availability_is_partial(self, small_world):
        """Some nodes must be down each round (flakiness is the point)."""
        total = len(small_world.planetlab.all_nodes())
        up = len(small_world.planetlab.available_nodes(0))
        assert 0 < up < total

    def test_flaky_nodes_up_less_often(self, small_world):
        nodes = small_world.planetlab.all_nodes()
        most_stable = max(nodes, key=lambda n: n.availability)
        least_stable = min(nodes, key=lambda n: n.availability)
        if most_stable.availability - least_stable.availability < 0.3:
            return  # not enough spread in this world to compare
        rounds = range(30)
        stable_up = sum(
            1
            for r in rounds
            if any(
                n.node.node_id == most_stable.node.node_id
                for n in small_world.planetlab.available_nodes(r)
            )
        )
        flaky_up = sum(
            1
            for r in rounds
            if any(
                n.node.node_id == least_stable.node.node_id
                for n in small_world.planetlab.available_nodes(r)
            )
        )
        assert stable_up >= flaky_up
