"""The observability layer: purity when off, determinism when on.

The contract under test is the one ROADMAP's same-seed determinism
demands of any instrumentation:

* **off = untouched** — with observability disabled every handle is the
  shared null singleton, no spans or counters are recorded anywhere, and
  an instrumented run's saved result is byte-identical to an
  uninstrumented one;
* **on = structurally deterministic** — counters and gauges (the
  structural sections of the metrics artifact) are byte-stable across
  runs; only the timing sections vary;
* the merge/export surfaces (worker payload merging, Chrome trace
  export, pstats merging, the summarize table) behave as documented.
"""

from __future__ import annotations

import json
import pstats

import pytest

from repro import CampaignConfig, MeasurementCampaign, obs
from repro.cli import main
from repro.core.io import save_result
from repro.obs import MetricsRegistry, NullHandle, SpanTracer, summarize_metrics
from repro.obs.metrics import NULL_HANDLE
from repro.obs.profile import profile_to, profile_worker_job


@pytest.fixture
def obs_on():
    """Metrics + tracing enabled for one test, always restored."""
    obs.enable(metrics=True, trace=True)
    yield
    obs.disable()


def _campaign_bytes(world, path) -> bytes:
    campaign = MeasurementCampaign(world, CampaignConfig(num_rounds=2))
    save_result(campaign.run(), str(path))
    return path.read_bytes()


class TestDisabledPurity:
    def test_all_handles_are_the_null_singleton(self):
        assert obs.counter("a") is NULL_HANDLE
        assert obs.gauge("b") is NULL_HANDLE
        assert obs.timer("c") is NULL_HANDLE
        assert obs.span("d") is NULL_HANDLE
        assert isinstance(NULL_HANDLE, NullHandle)
        assert not NULL_HANDLE  # falsy, so `if handle:` guards cost nothing

    def test_null_handle_records_nothing(self):
        with obs.span("phase"):
            obs.inc("n", 5)
            obs.set_gauge("g", 1.0)
            obs.observe("t", 0.25)
        assert obs.metrics_registry() is None
        assert obs.tracer() is None
        assert not obs.active()

    def test_worker_payload_is_none_when_off(self):
        obs.begin_worker(lane=7)
        assert obs.worker_payload() is None

    def test_run_with_obs_off_matches_run_with_obs_on(
        self, small_world, tmp_path
    ):
        off = _campaign_bytes(small_world, tmp_path / "off.json")
        obs.enable(metrics=True, trace=True)
        try:
            on = _campaign_bytes(small_world, tmp_path / "on.json")
            assert len(obs.tracer()) > 0  # instrumentation really recorded
        finally:
            obs.disable()
        assert off == on

    def test_write_when_off_emits_empty_artifacts(self, tmp_path):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        obs.write_metrics(str(metrics_path))
        obs.write_trace(str(trace_path))
        artifact = json.loads(metrics_path.read_text())
        assert artifact["structural"] == {"counters": {}, "gauges": {}}
        assert json.loads(trace_path.read_text())["traceEvents"] == []


class TestEnabledDeterminism:
    def _structural(self, world) -> tuple[str, list[str]]:
        obs.enable(metrics=True, trace=True)
        try:
            MeasurementCampaign(world, CampaignConfig(num_rounds=2)).run()
            artifact = obs.metrics_registry().as_artifact()
        finally:
            obs.disable()
        return (
            json.dumps(artifact["structural"], sort_keys=True),
            sorted(artifact["timings"]),
        )

    def test_structural_sections_are_byte_stable(self, small_world):
        first_structural, first_timings = self._structural(small_world)
        second_structural, second_timings = self._structural(small_world)
        assert first_structural == second_structural
        assert first_timings == second_timings

    def test_artifact_schema(self, small_world, tmp_path, obs_on):
        MeasurementCampaign(small_world, CampaignConfig(num_rounds=1)).run()
        path = tmp_path / "metrics.json"
        obs.write_metrics(str(path))
        artifact = json.loads(path.read_text())
        assert artifact["schema"] == "repro.obs.metrics/1"
        assert artifact["structural"]["counters"]["campaign.rounds"] == 1
        round_timing = artifact["timings"]["campaign.round"]
        assert round_timing["count"] == 1
        assert round_timing["total_ms"] >= round_timing["min_ms"]


class TestMetricsRegistry:
    def test_counters_gauges_timers(self):
        registry = MetricsRegistry()
        handle = registry.counter("hits")
        handle.inc()
        handle.inc(4)
        registry.gauge("depth").set(2.5)
        registry.observe("phase", 0.002)
        artifact = registry.as_artifact()
        assert artifact["structural"]["counters"]["hits"] == 5
        assert artifact["structural"]["gauges"]["depth"] == 2.5
        assert artifact["timings"]["phase"]["total_ms"] == 2.0

    def test_merge_payload_sums_counters_and_merges_timings(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        a.observe("t", 0.004)
        b.observe("t", 0.002)
        b.set_gauge("g", 9)
        a.merge_payload(b.to_payload())
        artifact = a.as_artifact()
        assert artifact["structural"]["counters"]["n"] == 5
        assert artifact["structural"]["gauges"]["g"] == 9
        timing = artifact["timings"]["t"]
        assert timing["count"] == 2
        assert timing["min_ms"] == 2.0
        assert timing["max_ms"] == 4.0

    def test_artifact_bytes_are_stable_for_equal_structural_state(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("b", 2)
            registry.inc("a", 1)
            return registry

        first, second = build().as_artifact(), build().as_artifact()
        assert json.dumps(first["structural"], sort_keys=True) == json.dumps(
            second["structural"], sort_keys=True
        )


class TestTrace:
    def test_chrome_export_shape(self):
        tracer = SpanTracer()
        tracer.add_complete("alpha", 10.0, 0.5, 0.25)
        tracer.add_complete("beta", 11.0, 0.125, 0.1)
        trace = tracer.to_chrome()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["alpha", "beta"]
        assert complete[0]["ts"] == 0  # re-based to the earliest span
        assert complete[0]["dur"] == 500_000
        assert complete[0]["args"]["cpu_ms"] == 250.0
        meta = {e["name"] for e in events if e["ph"] == "M"}
        assert {"process_name", "thread_name"} <= meta

    def test_merged_worker_payload_keeps_its_lane(self):
        front = SpanTracer()
        front.add_complete("front", 10.0, 0.1, 0.1)
        worker = SpanTracer(lane=3, lane_name="worker-2")
        worker.add_complete("work", 10.5, 0.2, 0.2)
        front.merge_payload(worker.to_payload())
        complete = [
            e for e in front.to_chrome()["traceEvents"] if e["ph"] == "X"
        ]
        assert {e["tid"] for e in complete} == {0, 3}
        names = [
            e for e in front.to_chrome()["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert {m["args"]["name"] for m in names} == {"main", "worker-2"}


class TestSweepFanOutMerging:
    def test_two_worker_sweep_merges_worker_lanes(self, obs_on):
        from repro.core.sweep import SweepRequest, run_sweep

        request = SweepRequest.from_scenario(
            ("baseline",),
            seeds=(11, 12),
            rounds=1,
            countries=8,
            workers=2,
        )
        run_sweep(request)
        artifact = obs.metrics_registry().as_artifact()
        assert artifact["structural"]["counters"]["sweep.jobs"] == 2
        busy = artifact["timings"]["sweep.worker.busy"]
        assert busy["count"] >= 1  # one observation per worker pid used
        lanes = {event[4] for event in obs.tracer()._events}
        assert len(lanes - {0}) == 2  # both pool pids traced as own lanes


class TestProfile:
    def test_profile_to_writes_mergeable_pstats(self, tmp_path):
        out = tmp_path / "driver.prof"
        with profile_to(str(out)):
            sum(range(1000))
        assert pstats.Stats(str(out)).total_calls > 0

    def test_worker_profiles_merge_into_driver_stats(self, tmp_path):
        from repro.obs.profile import active_worker_dir

        out = tmp_path / "merged.prof"
        with profile_to(str(out), workers=True):
            worker_dir = active_worker_dir()
            assert worker_dir is not None
            with profile_worker_job(worker_dir, "job-1"):
                sum(range(1000))
        assert pstats.Stats(str(out)).total_calls > 0

    def test_worker_job_is_noop_without_a_directory(self):
        with profile_worker_job(None, "job"):
            pass


class TestSummarizeAndCli:
    def test_summarize_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            summarize_metrics({"schema": "bogus/9"})

    def test_summarize_renders_tables(self):
        registry = MetricsRegistry()
        registry.inc("service.queries", 41)
        registry.set_gauge("sweep.workers", 2)
        registry.observe("campaign.round", 0.25)
        text = summarize_metrics(registry.as_artifact())
        assert "campaign.round" in text
        assert "service.queries" in text
        assert "41" in text
        assert "sweep.workers" in text

    def test_cli_metrics_summarize(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.inc("campaign.rounds", 2)
        path = tmp_path / "m.json"
        registry.write(str(path))
        assert main(["metrics", "summarize", str(path)]) == 0
        assert "campaign.rounds" in capsys.readouterr().out

    def test_cli_campaign_writes_obs_artifacts(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        code = main(
            [
                "campaign",
                "--seed", "3",
                "--countries", "8",
                "--rounds", "1",
                "--out", str(tmp_path / "r.json"),
                "--metrics", str(metrics),
                "--trace", str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        artifact = json.loads(metrics.read_text())
        assert artifact["structural"]["counters"]["campaign.rounds"] == 1
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("name") == "campaign.round" for e in events)
        assert not obs.active()  # the CLI restored the null recorders

    def test_cli_campaign_profile(self, tmp_path, capsys):
        out = tmp_path / "p.prof"
        code = main(
            [
                "campaign",
                "--seed", "3",
                "--countries", "8",
                "--rounds", "1",
                "--out", str(tmp_path / "r.json"),
                "--profile", str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert pstats.Stats(str(out)).total_calls > 0
