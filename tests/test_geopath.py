"""Tests for the geographic path walker and inflation metrics."""

import pytest

from repro.errors import RoutingError
from repro.geo.cities import city as city_of
from repro.geo.distance import great_circle_km
from repro.net.ipv4 import IPv4Prefix
from repro.routing.geopath import GeoPathWalker
from repro.routing.inflation import geodesic_inflation, path_length_km
from repro.topology.graph import ASGraph
from repro.topology.types import ASType, AutonomousSystem


def _graph():
    g = ASGraph()
    specs = [
        (1, ("Madrid/ES", "Paris/FR")),
        (2, ("Paris/FR", "Frankfurt/DE", "London/GB")),
        (3, ("Frankfurt/DE", "Warsaw/PL")),
    ]
    for asn, cities in specs:
        g.add_as(
            AutonomousSystem(
                asn=asn,
                name=f"AS{asn}",
                as_type=ASType.TRANSIT_REGIONAL,
                cc="DE",
                pop_cities=cities,
                prefixes=(IPv4Prefix.parse(f"10.{asn}.0.0/16"),),
            )
        )
    g.add_c2p(1, 2, ["Paris/FR"])
    g.add_c2p(3, 2, ["Frankfurt/DE", "London/GB"])
    return g


class TestWalker:
    def test_single_as_path(self):
        walker = GeoPathWalker(_graph())
        segs = walker.segments("Madrid/ES", [1], "Paris/FR")
        assert len(segs) == 1
        assert segs[0].carrier_asn == 1
        assert walker.waypoints("Madrid/ES", [1], "Paris/FR") == ["Madrid/ES", "Paris/FR"]

    def test_hot_potato_picks_nearest_interconnect(self):
        walker = GeoPathWalker(_graph())
        # from Warsaw, the 3-2 edge offers Frankfurt or London; Frankfurt is
        # nearer to Warsaw, so hot-potato hands over there
        waypoints = walker.waypoints("Warsaw/PL", [3, 2], "Paris/FR")
        assert waypoints == ["Warsaw/PL", "Frankfurt/DE", "Paris/FR"]

    def test_carrier_attribution(self):
        walker = GeoPathWalker(_graph())
        segs = walker.segments("Madrid/ES", [1, 2], "Frankfurt/DE")
        # Madrid->Paris carried by AS1, Paris->Frankfurt by AS2
        assert [(s.from_city, s.to_city, s.carrier_asn) for s in segs] == [
            ("Madrid/ES", "Paris/FR", 1),
            ("Paris/FR", "Frankfurt/DE", 2),
        ]

    def test_zero_length_segments_dropped(self):
        walker = GeoPathWalker(_graph())
        # source already at the interconnect city
        segs = walker.segments("Paris/FR", [1, 2], "Paris/FR")
        assert segs == []

    def test_empty_path_rejected(self):
        walker = GeoPathWalker(_graph())
        with pytest.raises(RoutingError):
            walker.segments("Madrid/ES", [], "Paris/FR")

    def test_non_adjacent_rejected(self):
        walker = GeoPathWalker(_graph())
        with pytest.raises(RoutingError):
            walker.segments("Madrid/ES", [1, 3], "Warsaw/PL")

    def test_propagation_positive_and_stretch_sensitive(self):
        graph = _graph()
        flat = GeoPathWalker(graph)
        stretched = GeoPathWalker(graph, stretch_of=lambda asn: 2.0)
        base = flat.propagation_ms("Madrid/ES", [1, 2], "Frankfurt/DE")
        double = stretched.propagation_ms("Madrid/ES", [1, 2], "Frankfurt/DE")
        assert base > 0
        assert double == pytest.approx(base * 2.0 / GeoPathWalker.DEFAULT_STRETCH)

    def test_propagation_at_least_geodesic(self):
        walker = GeoPathWalker(_graph())
        prop = walker.propagation_ms("Madrid/ES", [1, 2, 3], "Warsaw/PL")
        geodesic = great_circle_km(
            city_of("Madrid/ES").location, city_of("Warsaw/PL").location
        )
        from repro.geo.distance import SPEED_OF_LIGHT_FIBER_KM_PER_MS

        assert prop >= geodesic / SPEED_OF_LIGHT_FIBER_KM_PER_MS


class TestInflation:
    def test_straight_path_no_inflation(self):
        assert geodesic_inflation(["Madrid/ES", "Paris/FR"]) == pytest.approx(1.0)

    def test_detour_inflates(self):
        direct = ["Madrid/ES", "Paris/FR"]
        detour = ["Madrid/ES", "London/GB", "Paris/FR"]
        assert geodesic_inflation(detour) > geodesic_inflation(direct)

    def test_path_length_additive(self):
        a = path_length_km(["Madrid/ES", "Paris/FR"])
        b = path_length_km(["Paris/FR", "Frankfurt/DE"])
        total = path_length_km(["Madrid/ES", "Paris/FR", "Frankfurt/DE"])
        assert total == pytest.approx(a + b)

    def test_degenerate_paths(self):
        assert geodesic_inflation(["Madrid/ES"]) == 1.0
        assert geodesic_inflation(["Madrid/ES", "Madrid/ES"]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            path_length_km([])
