"""World-assembly integration tests."""

import pytest

from repro import build_world
from repro.measurement.nodes import NodeKind
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig


class TestWorldAssembly:
    def test_node_index_complete(self, small_world):
        expected = (
            len(small_world.atlas.all_probes())
            + len(small_world.planetlab.all_nodes())
            + len(small_world.colo_pool.interfaces())
            + small_world.periscope.num_lgs()
        )
        assert small_world.num_nodes() == expected

    def test_node_lookup_by_id_and_ip(self, small_world):
        probe = small_world.atlas.all_probes()[0]
        assert small_world.node(probe.probe_id) is probe.node
        assert small_world.node_by_ip(probe.node.ip) is probe.node

    def test_unknown_lookups(self, small_world):
        from repro.net.ipv4 import IPv4Address

        with pytest.raises(KeyError):
            small_world.node("no-such-node")
        assert small_world.node_by_ip(IPv4Address.parse("203.0.113.1")) is None

    def test_all_node_kinds_present(self, small_world):
        kinds = set()
        for probe in small_world.atlas.all_probes():
            kinds.add(probe.node.kind)
        for node in small_world.planetlab.all_nodes():
            kinds.add(node.node.kind)
        for itf in small_world.colo_pool.interfaces():
            kinds.add(itf.node.kind)
        for city in small_world.periscope.covered_cities():
            for lg in small_world.periscope.lgs_in(city):
                kinds.add(lg.node.kind)
        assert kinds == set(NodeKind)

    def test_summary_counts(self, small_world):
        summary = small_world.summary()
        assert summary["atlas_probes"] > 0
        assert summary["planetlab_nodes"] > 0
        assert summary["colo_interfaces"] > 0
        assert summary["looking_glasses"] > 0
        assert summary["facility_mapping_records"] > 0

    def test_world_determinism(self):
        config = WorldConfig(topology=TopologyConfig(country_limit=8))
        a = build_world(seed=5, config=config)
        b = build_world(seed=5, config=config)
        assert a.summary() == b.summary()
        probes_a = [(p.probe_id, p.asn, p.firmware) for p in a.atlas.all_probes()]
        probes_b = [(p.probe_id, p.asn, p.firmware) for p in b.atlas.all_probes()]
        assert probes_a == probes_b
        records_a = [(str(r.ip), r.recorded_asn) for r in a.facility_mapping.records()]
        records_b = [(str(r.ip), r.recorded_asn) for r in b.facility_mapping.records()]
        assert records_a == records_b

    def test_different_seeds_differ(self):
        config = WorldConfig(topology=TopologyConfig(country_limit=8))
        a = build_world(seed=5, config=config)
        b = build_world(seed=6, config=config)
        probes_a = [(p.probe_id, p.asn) for p in a.atlas.all_probes()]
        probes_b = [(p.probe_id, p.asn) for p in b.atlas.all_probes()]
        assert probes_a != probes_b
