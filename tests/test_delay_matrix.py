"""Tests for the vectorized measurement engine.

Covers the three legs of the vectorization: `CityDelayMatrix` lookups must
match the scalar geometry helpers, the broadcast feasibility mask must match
the scalar Sec 2.4 bound relay for relay, and batched pings must be drawn
from the same model as scalar pings — plus determinism of the whole
campaign under the new engine.
"""

import numpy as np
import pytest

from repro import CampaignConfig, MeasurementCampaign, build_world
from repro.core.colo import ColoRelayPipeline
from repro.core.eyeballs import EyeballSelector
from repro.core.feasibility import feasibility_mask, feasible_relays, is_feasible
from repro.errors import GeoError
from repro.geo.cities import all_cities, city as city_of
from repro.geo.distance import great_circle_km, propagation_delay_ms
from repro.geo.matrix import CityDelayMatrix
from repro.latency.model import Endpoint, LatencyConfig, LatencyModel
from repro.latency.ping import PingEngine
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig


class TestCityDelayMatrixEquivalence:
    def test_distances_match_scalar_haversine(self):
        matrix = CityDelayMatrix()
        cities = all_cities()
        for i in range(0, len(cities), 7):
            for j in range(0, len(cities), 11):
                expected = great_circle_km(cities[i].location, cities[j].location)
                got = matrix.distance_km(i, j)
                assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_delays_match_scalar_propagation(self):
        matrix = CityDelayMatrix()
        cities = all_cities()
        for i in range(0, len(cities), 13):
            for j in range(1, len(cities), 17):
                expected = propagation_delay_ms(
                    cities[i].location, cities[j].location
                )
                got = matrix.one_way_ms(i, j)
                assert got == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_submatrix_matches_rows(self):
        matrix = CityDelayMatrix()
        rows = np.array([3, 1, 10])
        cols = np.array([0, 5, 2, 8])
        sub = matrix.one_way_ms_matrix(rows, cols)
        assert sub.shape == (3, 4)
        for a, i in enumerate(rows):
            for b, j in enumerate(cols):
                assert sub[a, b] == matrix.one_way_ms(int(i), int(j))

    def test_diagonal_zero_and_symmetric(self):
        matrix = CityDelayMatrix()
        n = matrix.size
        idx = np.arange(0, n, 5)
        full = matrix.distance_km_matrix(idx, idx)
        assert np.allclose(np.diag(full), 0.0)
        assert np.allclose(full, full.T)

    def test_index_roundtrip_and_unknown_key(self):
        matrix = CityDelayMatrix()
        key = all_cities()[17].key
        assert matrix.key_of(matrix.index(key)) == key
        with pytest.raises(GeoError):
            matrix.index("Atlantis/XX")
        with pytest.raises(GeoError):
            matrix.indices(["London/GB", "Atlantis/XX"])

    def test_by_key_wrappers(self):
        matrix = CityDelayMatrix()
        a, b = "London/GB", "Tokyo/JP"
        expected = propagation_delay_ms(city_of(a).location, city_of(b).location)
        assert matrix.one_way_ms_between(a, b) == pytest.approx(expected, rel=1e-9)

    def test_instances_are_independent(self):
        # per-instance caches: filling one matrix must not touch another
        m1 = CityDelayMatrix()
        m2 = CityDelayMatrix()
        m1.distance_row(0)
        assert not m2._filled[0]
        assert m2.distance_km(0, 1) == m1.distance_km(0, 1)


class TestFeasibilityMaskEquivalence:
    def test_mask_matches_scalar_bound_on_sampled_round(self, small_world):
        """The broadcast mask must agree with `is_feasible` relay-for-relay."""
        cfg = CampaignConfig(num_rounds=1, max_countries=8)
        rng = small_world.seeds.rng("test.matrix.feasibility")
        endpoints = [
            p.node.endpoint
            for p in EyeballSelector(small_world, cfg).sample_endpoints(rng)
        ]
        relays = [
            c.node.endpoint
            for c in ColoRelayPipeline(small_world, cfg).sample_relays(rng)
        ]
        assert len(endpoints) >= 4 and len(relays) >= 4
        matrix = small_world.delay_matrix
        model = small_world.latency
        ep_cities = matrix.indices(e.city_key for e in endpoints)
        relay_cities = matrix.indices(r.city_key for r in relays)
        one_way = matrix.one_way_ms_matrix(ep_cities, relay_cities)

        pairs = [
            (i, j, model.base_rtt_ms(endpoints[i], endpoints[j]))
            for i in range(len(endpoints))
            for j in range(i + 1, len(endpoints))
        ]
        pairs = [(i, j, rtt) for i, j, rtt in pairs if rtt is not None]
        assert pairs
        mask = feasibility_mask(
            one_way,
            np.array([i for i, _, _ in pairs]),
            np.array([j for _, j, _ in pairs]),
            np.array([rtt for _, _, rtt in pairs]),
        )
        checked = 0
        for k, (i, j, rtt) in enumerate(pairs):
            for r, relay in enumerate(relays):
                scalar = is_feasible(relay, endpoints[i], endpoints[j], rtt)
                assert bool(mask[k, r]) == scalar
                checked += 1
        assert checked == len(pairs) * len(relays)

    def test_scalar_wrapper_accepts_matrix(self, small_world):
        e1 = Endpoint("t1", 1, "London/GB", access_ms=1.0)
        e2 = Endpoint("t2", 1, "New York/US", access_ms=1.0)
        relay = Endpoint("t3", 1, "Dublin/IE", access_ms=1.0)
        direct = 2.0 * propagation_delay_ms(
            city_of("London/GB").location, city_of("New York/US").location
        )
        for rtt in (direct * 1.5, direct * 0.5):
            assert is_feasible(
                relay, e1, e2, rtt, matrix=small_world.delay_matrix
            ) == is_feasible(relay, e1, e2, rtt)
        kept = feasible_relays(
            [relay], e1, e2, direct * 1.5, matrix=small_world.delay_matrix
        )
        assert [r.node_id for r in kept] == ["t3"]


def _endpoint(world, i):
    return world.atlas.all_probes()[i].node.endpoint


class TestBatchPingEquivalence:
    def test_noiseless_batch_equals_base(self, small_world):
        """With all stochastic terms off, every batched packet is the base RTT."""
        model = LatencyModel(
            small_world.routing,
            small_world.walker,
            LatencyConfig(
                jitter_sigma=0.0,
                queueing_scale_ms=0.0,
                spike_prob=0.0,
                base_loss_prob=0.0,
            ),
        )
        # strip the probes' own packet loss so every packet is delivered
        src, dst = _endpoint(small_world, 0), _endpoint(small_world, 50)
        e1 = Endpoint("clean1", src.asn, src.city_key, access_ms=src.access_ms)
        e2 = Endpoint("clean2", dst.asn, dst.city_key, access_ms=dst.access_ms)
        base = model.base_rtt_ms(e1, e2)
        batch = model.sample_rtt_batch(e1, e2, np.random.default_rng(0), count=8)
        assert batch.shape == (8,)
        assert np.allclose(batch, base)

    def test_batch_statistics_match_scalar_model(self, small_world):
        """Batched draws follow the same distribution as scalar sampling."""
        model = small_world.latency
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        base = model.base_rtt_ms(e1, e2)
        scalar = [
            s
            for s in (
                model.sample_rtt_ms(e1, e2, np.random.default_rng(1))
                for _ in range(400)
            )
            if s is not None
        ]
        batch = model.sample_rtt_batch(e1, e2, np.random.default_rng(2), count=400)
        batch = batch[~np.isnan(batch)]
        assert len(batch) > 300 and len(scalar) > 300
        # medians are robust to the rare spikes; they must sit on the base
        assert np.median(batch) == pytest.approx(np.median(scalar), rel=0.02)
        assert np.median(batch) == pytest.approx(base, rel=0.05)

    def test_batch_marks_losses_and_unrouted(self, small_world):
        model = small_world.latency
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        lossy = Endpoint(
            "lossy", e2.asn, e2.city_key, access_ms=e2.access_ms, loss_prob=0.9
        )
        batch = model.sample_rtt_batch(e1, lossy, np.random.default_rng(3), 200)
        loss_frac = float(np.mean(np.isnan(batch)))
        assert 0.75 <= loss_frac <= 0.99

    def test_batch_marks_unrouted_rows(self, small_world):
        class _NoRoutes:
            def path(self, src_asn, dst_asn):
                return None

        model = LatencyModel(_NoRoutes(), small_world.walker)
        e1, e2 = _endpoint(small_world, 0), _endpoint(small_world, 50)
        matrix = model.sample_rtt_matrix(
            [(e1, e2), (e2, e1)], np.random.default_rng(4), 5
        )
        assert matrix.shape == (2, 5)
        assert np.all(np.isnan(matrix))

    def test_ping_many_matches_ping_semantics(self, small_world):
        engine = PingEngine(small_world.latency)
        e1, e2, e3 = (
            _endpoint(small_world, 0),
            _endpoint(small_world, 40),
            _endpoint(small_world, 50),
        )
        results = engine.ping_many(
            [(e1, e2), (e1, e3), (e2, e3)], np.random.default_rng(5), count=6
        )
        assert [r.src_id for r in results] == [e1.node_id, e1.node_id, e2.node_id]
        for r in results:
            assert r.num_sent == 6
            for rtt in r.valid_rtts:
                assert rtt > 0

    def test_median_many_matches_ping_median(self, small_world):
        """median_many must produce exactly a PingResult median for the same
        draws (same rng stream consumed the same way)."""
        engine = PingEngine(small_world.latency)
        legs = [
            (_endpoint(small_world, 0), _endpoint(small_world, 50)),
            (_endpoint(small_world, 10), _endpoint(small_world, 60)),
        ]
        meds = engine.median_many(legs, np.random.default_rng(6), count=6, min_valid=3)
        results = engine.ping_many(legs, np.random.default_rng(6), count=6)
        for med, result in zip(meds, results):
            expected = result.median_rtt(3)
            if expected is None:
                assert med != med
            else:
                assert med == expected


class TestCampaignDeterminismVectorized:
    def test_same_seed_worlds_bitwise_identical_campaigns(self):
        """Two worlds built from one seed must yield identical campaigns —
        every observation field, every median — under the new engine."""
        config = WorldConfig(topology=TopologyConfig(country_limit=8))
        cfg = CampaignConfig(num_rounds=2, max_countries=6)
        results = []
        for _ in range(2):
            world = build_world(seed=23, config=config)
            results.append(MeasurementCampaign(world, cfg).run())
        a, b = results
        assert a.total_pings == b.total_pings
        for rnd_a, rnd_b in zip(a.rounds, b.rounds):
            assert rnd_a.endpoint_ids == rnd_b.endpoint_ids
            assert rnd_a.direct_medians == rnd_b.direct_medians
            assert rnd_a.relay_medians == rnd_b.relay_medians
            assert rnd_a.relay_indices_by_type == rnd_b.relay_indices_by_type
            for obs_a, obs_b in zip(rnd_a.observations, rnd_b.observations):
                assert obs_a == obs_b
