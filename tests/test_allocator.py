"""Unit tests for the prefix allocator and host address book."""

import pytest

from repro.errors import AddressError
from repro.net.allocator import PrefixAllocator
from repro.net.ipv4 import IPv4Prefix


class TestPrefixAllocator:
    def test_sequential_allocation(self):
        alloc = PrefixAllocator("10.0.0.0/8")
        a = alloc.allocate_prefix(20)
        b = alloc.allocate_prefix(20)
        assert str(a) == "10.0.0.0/20"
        assert str(b) == "10.0.16.0/20"

    def test_alignment_after_mixed_sizes(self):
        alloc = PrefixAllocator("10.0.0.0/8")
        alloc.allocate_prefix(24)  # 10.0.0.0/24
        b = alloc.allocate_prefix(16)  # must be aligned to /16
        assert str(b) == "10.1.0.0/16"

    def test_no_overlap(self):
        alloc = PrefixAllocator("10.0.0.0/8")
        prefixes = [alloc.allocate_prefix(20) for _ in range(50)]
        for i, p in enumerate(prefixes):
            for q in prefixes[i + 1 :]:
                assert not p.contains_prefix(q)
                assert not q.contains_prefix(p)

    def test_shorter_than_supernet_rejected(self):
        alloc = PrefixAllocator("10.0.0.0/8")
        with pytest.raises(AddressError):
            alloc.allocate_prefix(4)

    def test_exhaustion(self):
        alloc = PrefixAllocator("10.0.0.0/30")
        alloc.allocate_prefix(31)
        alloc.allocate_prefix(31)
        with pytest.raises(AddressError):
            alloc.allocate_prefix(31)

    def test_host_allocation_skips_network_address(self):
        alloc = PrefixAllocator("10.0.0.0/8")
        prefix = alloc.allocate_prefix(30)
        first = alloc.allocate_host(prefix)
        assert str(first) == "10.0.0.1"

    def test_host_exhaustion(self):
        alloc = PrefixAllocator("10.0.0.0/8")
        prefix = alloc.allocate_prefix(30)
        for _ in range(3):
            alloc.allocate_host(prefix)
        with pytest.raises(AddressError):
            alloc.allocate_host(prefix)

    def test_accepts_prefix_object(self):
        alloc = PrefixAllocator(IPv4Prefix.parse("172.16.0.0/12"))
        assert str(alloc.supernet) == "172.16.0.0/12"


class TestHostAddressBook:
    def test_unique_addresses_within_as(self, small_world):
        from repro.measurement.nodes import HostAddressBook

        book = HostAddressBook(small_world.graph)
        asn = small_world.graph.asns()[0]
        addresses = {book.next_address(asn) for _ in range(100)}
        assert len(addresses) == 100

    def test_addresses_inside_as_prefixes(self, small_world):
        from repro.measurement.nodes import HostAddressBook

        book = HostAddressBook(small_world.graph)
        asn = small_world.graph.asns()[0]
        asys = small_world.graph.get_as(asn)
        addr = book.next_address(asn)
        assert any(p.contains(addr) for p in asys.prefixes)

    def test_unknown_as_rejected(self, small_world):
        from repro.errors import TopologyError
        from repro.measurement.nodes import HostAddressBook

        book = HostAddressBook(small_world.graph)
        with pytest.raises(TopologyError):
            book.next_address(999999)
